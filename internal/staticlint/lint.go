package staticlint

import (
	"fmt"
	"go/token"
	"strings"

	"weseer/internal/schema"
)

// Analyzer 2: the ORM-misuse source lint. It works on the interpreted
// function facts from source.go and flags the anti-pattern shapes behind
// the paper's application-side fixes:
//
//   - merge-select-insert: Merge on a (possibly new) entity issues an
//     existence SELECT — a range lock when the row is absent — before
//     the INSERT (fix f1's Persist, or an UPSERT, avoids the scan).
//   - upsert-candidate: `rows := s.Query(...); if len(rows) == 0 {
//     ... s.Persist(...) }` — check-then-insert, the d2 shape fix f2
//     replaces with INSERT ... ON DUPLICATE KEY UPDATE.
//   - flush-reorder: a buffered Set on an existing row followed by
//     session reads with no unconditional Flush between — the write
//     slides to commit, past the reads (d5/d6; fix f4 flushes early).
//   - unordered-locks: ranging over a collection that is not provably
//     sorted while taking row or mutex locks in the body — concurrent
//     callers acquire in different orders (d14–d18; fix f9–f11 sort).
//
// The lint over-approximates: branches are treated as sequential and a
// loop is "unordered" unless its ranged variable was sorted in the same
// function. Findings are hazard reports, not proofs.

// Lint runs Analyzer 2 over an already-scanned package.
func (p *pkgScan) Lint() []Finding {
	var out []Finding
	for _, f := range p.facts {
		out = append(out, f.mergeFindings()...)
		out = append(out, f.upsertFindings()...)
		out = append(out, f.flushFindings()...)
		out = append(out, f.unorderedFindings()...)
	}
	Sort(out)
	return out
}

func (f *fnFacts) finding(kind string, sev Severity, line int, table, detail string) Finding {
	return Finding{
		Analyzer: "ormlint", Kind: kind, Severity: sev,
		File: f.file, Line: line, Func: f.name, Table: table, Detail: detail,
	}
}

func (f *fnFacts) mergeFindings() []Finding {
	var out []Finding
	for _, m := range f.merges {
		out = append(out, f.finding(KindMergeSelectInsert, SevWarn, m.line, "",
			"Merge issues an existence SELECT (range lock when absent) before the INSERT; Persist or an UPSERT avoids the scan"))
	}
	return out
}

func (f *fnFacts) upsertFindings() []Finding {
	var out []Finding
	for _, ifs := range f.ifs {
		if !f.queried[ifs.emptyVar] {
			continue
		}
		hit := false
		for _, ps := range f.persists {
			if ps.pos >= ifs.body[0] && ps.pos < ifs.body[1] {
				hit = true
				break
			}
		}
		for _, m := range f.merges {
			if m.pos >= ifs.body[0] && m.pos < ifs.body[1] {
				hit = true
				break
			}
		}
		if !hit {
			continue
		}
		out = append(out, f.finding(KindUpsertCandidate, SevWarn, ifs.line, "",
			fmt.Sprintf("check-then-insert: the existence query behind len(%s) range-locks the absent key and the buffered INSERT collides with a concurrent peer's range; use a single UPSERT", ifs.emptyVar)))
	}
	return out
}

func (f *fnFacts) flushFindings() []Finding {
	var out []Finding
	reported := map[int]bool{}
	report := func(ev event) {
		if reported[ev.line] {
			return
		}
		reported[ev.line] = true
		tab := ev.entTab
		out = append(out, f.finding(KindFlushReorder, SevWarn, ev.line, tab,
			"buffered write slides past later session reads to the commit flush; flush before reading (or the lock order diverges from program order)"+provenance("write buffered", ev)))
	}
	// Linear pass: pending buffered writes are cleared by an
	// unconditional Flush and reported at the first read that crosses
	// them.
	var pending []event
	for _, ev := range f.events {
		switch ev.kind {
		case evWrite:
			pending = append(pending, ev)
		case evFlush:
			if ev.uncond {
				pending = nil
			}
		case evRead:
			if len(pending) > 0 {
				report(pending[0])
				pending = nil
			}
		}
	}
	// Loop-carried pass: a read earlier in a loop body re-executes after
	// the body's unflushed write on the next iteration.
	for _, lp := range f.loops {
		var reads []token.Pos
		for _, ev := range f.events {
			if ev.pos < lp.body[0] || ev.pos >= lp.body[1] {
				continue
			}
			if ev.kind == evRead {
				reads = append(reads, ev.pos)
			}
		}
		for _, ev := range f.events {
			if ev.kind != evWrite || ev.pos < lp.body[0] || ev.pos >= lp.body[1] {
				continue
			}
			flushed := false
			for _, fv := range f.events {
				if fv.kind == evFlush && fv.uncond && fv.pos > ev.pos && fv.pos < lp.body[1] {
					flushed = true
				}
			}
			if flushed {
				continue
			}
			for _, r := range reads {
				if r < ev.pos {
					report(ev)
					break
				}
			}
		}
	}
	return out
}

func (f *fnFacts) unorderedFindings() []Finding {
	var out []Finding
	for _, lp := range f.loops {
		locks := false
		via := ""
		for _, ev := range f.events {
			if ev.kind == evLock && ev.pos >= lp.body[0] && ev.pos < lp.body[1] {
				locks = true
				if via == "" {
					via = provenance("lock taken", ev)
				}
				if via != "" {
					break
				}
			}
		}
		if !locks {
			continue
		}
		out = append(out, f.finding(KindUnorderedLocks, SevError, lp.line, "",
			fmt.Sprintf("loop over %s takes row or mutex locks per element without a proven order; concurrent callers acquire in different orders and deadlock — sort the collection first%s", lp.rangeExpr, via)))
	}
	return out
}

// provenance renders a whole-program summary event's call chain for a
// finding detail: the old one-level heuristic leaves leafFile empty and
// contributes nothing, so ablation output is unchanged.
func provenance(what string, ev event) string {
	if !ev.summary || len(ev.path) == 0 || ev.leafFile == "" {
		return ""
	}
	return fmt.Sprintf("; %s via %s at %s:%d", what, strings.Join(ev.path, " -> "), ev.leafFile, ev.leafLine)
}

// VetOptions selects the callee-resolution strategy.
type VetOptions struct {
	// CallGraph enables whole-program analysis: type-check the full
	// directory tree, resolve callees with go/types, and propagate
	// transitive event summaries bottom-up over the SCC condensation.
	// Off, the scan is the per-package one-level name heuristic.
	CallGraph bool
	// Devirt enables CHA devirtualization of interface call sites
	// (only meaningful with CallGraph; off is the ablation where
	// interface calls resolve to nothing).
	Devirt bool
}

// DefaultVetOptions is what `weseer vet` runs with: whole-program
// resolution with devirtualization.
func DefaultVetOptions() VetOptions { return VetOptions{CallGraph: true, Devirt: true} }

// scanAny scans dir under the selected resolution strategy, returning
// function facts the lint and shape layers consume identically either
// way.
func scanAny(dir string, opt VetOptions) (*pkgScan, error) {
	if !opt.CallGraph {
		return scanDir(dir)
	}
	prog, err := loadTree(dir)
	if err != nil {
		return nil, err
	}
	return prog.scan(opt), nil
}

// Vet runs both analyzers over the package tree in dir with the default
// whole-program resolution: Analyzer 2 on the source and Analyzer 1 on
// the statement templates extracted from it. scm may be nil (no schema
// → gap-escalation and synthesized point statements are skipped).
func Vet(dir string, scm *schema.Schema) ([]Finding, error) {
	return VetDir(dir, scm, DefaultVetOptions())
}

// VetDir is Vet with an explicit resolution strategy.
func VetDir(dir string, scm *schema.Schema, opt VetOptions) ([]Finding, error) {
	p, err := scanAny(dir, opt)
	if err != nil {
		return nil, err
	}
	out := p.Lint()
	out = append(out, PrescreenTxns(p.Shapes(scm), scm)...)
	Sort(out)
	return out, nil
}

// DirShapes extracts Analyzer 1's transaction shapes from the package
// tree in dir — the per-API statement templates lock-order
// canonicalization merges. scm may be nil (Find/Set synthesis is
// skipped without primary-key columns).
func DirShapes(dir string, scm *schema.Schema) ([]TxnShape, error) {
	return DirShapesOpt(dir, scm, DefaultVetOptions())
}

// DirShapesOpt is DirShapes with an explicit resolution strategy.
func DirShapesOpt(dir string, scm *schema.Schema, opt VetOptions) ([]TxnShape, error) {
	p, err := scanAny(dir, opt)
	if err != nil {
		return nil, err
	}
	return p.Shapes(scm), nil
}
