package staticlint

import (
	"testing"

	"weseer/internal/schema"
	"weseer/internal/sqlast"
)

func testSchema() *schema.Schema {
	s := schema.New()
	s.AddTable("T").
		Col("ID", schema.Int).Col("V", schema.Int).Col("K", schema.Int).
		PrimaryKey("ID").
		Index("idx_t_k", "K")
	return s
}

func sel(t *testing.T, sql string, rigid map[int]string, empty Emptiness) StmtShape {
	t.Helper()
	st, err := sqlast.Parse(sql)
	if err != nil {
		t.Fatalf("parse %q: %v", sql, err)
	}
	return StmtShape{Stmt: st, Rigid: rigid, Empty: empty}
}

// Two point statements pinned to different primary keys lock provably
// disjoint rows: the refined edge test must refute them, while the
// index-level test (which they exist to sharpen) cannot.
func TestEdgeRefutedByRigidKeys(t *testing.T) {
	scm := testSchema()
	w := sel(t, "UPDATE T SET V = ? WHERE ID = ?", map[int]string{1: "i:1"}, EmptyUnknown)
	r := sel(t, "SELECT * FROM T t WHERE t.ID = ?", map[int]string{0: "i:2"}, EmptyNo)
	if EdgePossible(w, r, scm) {
		t.Fatal("disjoint rigid point rows must not form a C-edge")
	}
	// Same key: collision.
	r1 := sel(t, "SELECT * FROM T t WHERE t.ID = ?", map[int]string{0: "i:1"}, EmptyNo)
	if !EdgePossible(w, r1, scm) {
		t.Fatal("same rigid key must collide")
	}
	// Free parameter: any row is reachable.
	r2 := sel(t, "SELECT * FROM T t WHERE t.ID = ?", nil, EmptyNo)
	if !EdgePossible(w, r2, scm) {
		t.Fatal("a free parameter must stay conservative")
	}
	// Inline constants pin keys just like rigid parameters.
	w3 := sel(t, "UPDATE T SET V = ? WHERE ID = 3", nil, EmptyUnknown)
	r3 := sel(t, "SELECT * FROM T t WHERE t.ID = 4", nil, EmptyNo)
	if EdgePossible(w3, r3, scm) {
		t.Fatal("disjoint inline-constant rows must not form a C-edge")
	}
}

// An empty read holds a range (next-key) lock, not a row lock: key
// disequality must NOT refute it — the write can land inside the range.
func TestEdgeKeepsRangeLocks(t *testing.T) {
	scm := testSchema()
	w := sel(t, "UPDATE T SET V = ? WHERE ID = ?", map[int]string{1: "i:1"}, EmptyUnknown)
	r := sel(t, "SELECT * FROM T t WHERE t.ID = ?", map[int]string{0: "i:2"}, EmptyYes)
	if !EdgePossible(w, r, scm) {
		t.Fatal("range locks are never refuted by point-key disequality")
	}
	// Secondary (non-unique) index scans also stay.
	r2 := sel(t, "SELECT * FROM T t WHERE t.K = ?", map[int]string{0: "i:2"}, EmptyNo)
	if !EdgePossible(w, r2, scm) {
		t.Fatal("non-unique index access must stay conservative")
	}
}

func TestCyclePossible(t *testing.T) {
	scm := testSchema()
	upd := func(key string) StmtShape {
		m := map[int]string{}
		if key != "" {
			m[1] = key
		}
		return sel(t, "UPDATE T SET V = ? WHERE ID = ?", m, EmptyUnknown)
	}
	// Free keys: the classic hold-and-wait cycle stands.
	if !CyclePossible(upd(""), upd(""), upd(""), upd(""), scm) {
		t.Fatal("free-key cycle must be possible")
	}
	// One C-edge joins provably different rows: the cycle is refuted.
	if CyclePossible(upd("i:1"), upd("i:1"), upd("i:2"), upd("i:2"), scm) {
		t.Fatal("rigidly disjoint cycle must be refuted")
	}
}

func TestPairDeadlockPossible(t *testing.T) {
	scm := testSchema()
	read := func(key string) StmtShape {
		m := map[int]string{}
		if key != "" {
			m[0] = key
		}
		return sel(t, "SELECT * FROM T t WHERE t.ID = ?", m, EmptyNo)
	}
	write := func(key string) StmtShape {
		m := map[int]string{}
		if key != "" {
			m[1] = key
		}
		return sel(t, "UPDATE T SET V = ? WHERE ID = ?", m, EmptyUnknown)
	}
	// Upgrade pattern: S then X on the same shared row — deadlock shape.
	up := TxnShape{API: "up", Stmts: []StmtShape{read(""), write("")}}
	if !PairDeadlockPossible(up, up, scm) {
		t.Fatal("upgrade pair must stay a candidate")
	}
	// One statement each: hold-and-wait needs two lock points per side.
	one := TxnShape{API: "one", Stmts: []StmtShape{write("")}}
	if PairDeadlockPossible(one, one, scm) {
		t.Fatal("single-statement transactions cannot hold and wait")
	}
	// Rigidly disjoint rows: every edge is refuted.
	t1 := TxnShape{API: "a", Stmts: []StmtShape{read("i:1"), write("i:1")}}
	t2 := TxnShape{API: "b", Stmts: []StmtShape{read("i:2"), write("i:2")}}
	if PairDeadlockPossible(t1, t2, scm) {
		t.Fatal("transactions on disjoint rigid rows cannot deadlock")
	}
}
