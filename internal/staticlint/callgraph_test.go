package staticlint

// Internal tests for the whole-program layer: loader behaviour, typed
// and CHA callee resolution, transitive summaries over the SCC
// condensation, and — the PR's acceptance pin — the precision delta
// against the old per-package receiver-name heuristic.

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

const wholeprogDir = "testdata/src/wholeprog"

func scanCorpus(t *testing.T, dir string, opt VetOptions) *pkgScan {
	t.Helper()
	ps, err := scanAny(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	return ps
}

func factsOf(t *testing.T, ps *pkgScan, name string) *fnFacts {
	t.Helper()
	for _, f := range ps.facts {
		if f.name == name {
			return f
		}
	}
	t.Fatalf("no facts for function %q", name)
	return nil
}

func locksOf(f *fnFacts) []event {
	var out []event
	for _, ev := range f.events {
		if ev.kind == evLock {
			out = append(out, ev)
		}
	}
	return out
}

// TestWholeProgramSequences asserts the resolved transitive event
// sequences on the fixture corpus: the lock two hops away in another
// package, the lock behind an interface, and the lock around a
// recursive cycle all appear in the caller's events, with provenance
// chains naming the path and the leaf acquisition site.
func TestWholeProgramSequences(t *testing.T) {
	ps := scanCorpus(t, wholeprogDir, DefaultVetOptions())
	leaf := wholeprogDir + "/dao/dao.go"
	for _, tc := range []struct {
		fn       string
		path     []string
		leafLine int
	}{
		{"PriceAll", []string{"dao.LockProduct"}, 26},
		{"ProcessAll", []string{"store.DBStore.Save", "dao.LockProduct"}, 26},
		{"drainTree", []string{"dao.LockProduct"}, 26},
		{"drainKids", []string{"drainTree", "dao.LockProduct"}, 26},
	} {
		t.Run(tc.fn, func(t *testing.T) {
			f := factsOf(t, ps, tc.fn)
			locks := locksOf(f)
			if len(locks) != 1 {
				t.Fatalf("%s: want exactly 1 lock event, got %d: %+v", tc.fn, len(locks), locks)
			}
			ev := locks[0]
			if !ev.summary {
				t.Errorf("%s: lock event not marked as summary-inferred", tc.fn)
			}
			if !reflect.DeepEqual(ev.path, tc.path) {
				t.Errorf("%s: provenance path = %v, want %v", tc.fn, ev.path, tc.path)
			}
			if ev.leafFile != leaf || ev.leafLine != tc.leafLine {
				t.Errorf("%s: leaf = %s:%d, want %s:%d", tc.fn, ev.leafFile, ev.leafLine, leaf, tc.leafLine)
			}
		})
	}
	// The inlined statement template carries the leaf file too, so
	// canonical-order votes cite the real acquisition site.
	f := factsOf(t, ps, "PriceAll")
	if len(f.tmpls) != 1 || f.tmpls[0].kind != tmplSQL || f.tmpls[0].file != leaf {
		t.Errorf("PriceAll templates = %+v, want one inlined SQL template from %s", f.tmpls, leaf)
	}
}

// TestResolverDelta is the acceptance pin: it runs both resolvers over
// the fixture corpus and asserts that whole-program analysis binds call
// sites — cross-package, interface-dispatch, and from an
// unnamed-receiver method — that the name-matching heuristic provably
// left unresolved, and that only whole-program analysis sees the lock
// reached around the recursive SCC.
func TestResolverDelta(t *testing.T) {
	cg := scanCorpus(t, wholeprogDir, DefaultVetOptions())

	// The heuristic scan is per-package and non-recursive: run it over
	// each fixture package the way the old Vet did.
	heur := map[string][]string{}
	var heurScans []*pkgScan
	for _, sub := range []string{"dao", "handler", "store"} {
		ps, err := scanDir(filepath.Join(wholeprogDir, sub))
		if err != nil {
			t.Fatal(err)
		}
		heurScans = append(heurScans, ps)
		for k, v := range ps.resolved {
			heur[k] = append(heur[k], v...)
		}
	}

	for _, tc := range []struct {
		site   string
		callee string
		why    string
	}{
		{wholeprogDir + "/handler/handler.go:17", "dao.LockProduct", "cross-package call"},
		{wholeprogDir + "/handler/handler.go:26", "store.DBStore.Save", "interface dispatch (CHA)"},
		{wholeprogDir + "/store/store.go:28", "dao.LockProduct", "cross-package call from an unnamed-receiver method"},
	} {
		if _, ok := heur[tc.site]; ok {
			t.Errorf("%s: heuristic unexpectedly resolved the site (%s)", tc.site, tc.why)
		}
		found := false
		for _, name := range cg.resolved[tc.site] {
			if name == tc.callee {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: call graph did not resolve %s (%s); got %v", tc.site, tc.callee, tc.why, cg.resolved[tc.site])
		}
	}

	// Recursion: the heuristic binds drainKids -> drainTree (same
	// package, plain call) but its one-level summary sees no session
	// call in drainTree's body, so the lock is still missed; the
	// fixed-point summary carries it around the cycle.
	for _, ps := range heurScans {
		for _, f := range ps.facts {
			if f.name == "drainKids" && len(locksOf(f)) != 0 {
				t.Errorf("heuristic drainKids unexpectedly saw a lock event")
			}
		}
	}
	if got := len(locksOf(factsOf(t, cg, "drainKids"))); got != 1 {
		t.Errorf("whole-program drainKids lock events = %d, want 1", got)
	}

	// Finding-level delta: the heuristic reports no unordered-locks
	// hazard anywhere in the corpus; whole-program analysis reports all
	// three loops.
	var heurFs []Finding
	for _, sub := range []string{"dao", "handler", "store"} {
		fs, err := VetDir(filepath.Join(wholeprogDir, sub), nil, VetOptions{})
		if err != nil {
			t.Fatal(err)
		}
		heurFs = append(heurFs, fs...)
	}
	for _, f := range heurFs {
		if f.Kind == KindUnorderedLocks {
			t.Errorf("heuristic unexpectedly found: %s", f)
		}
	}
	cgFs, err := VetDir(wholeprogDir, nil, DefaultVetOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range []int{16, 25, 39} {
		ok := false
		for _, f := range cgFs {
			if f.Kind == KindUnorderedLocks && f.Line == line {
				ok = true
			}
		}
		if !ok {
			t.Errorf("whole-program vet missing unordered-locks at handler.go:%d\nall:\n%v", line, cgFs)
		}
	}
}

// TestDevirtOff is the CHA ablation: without devirtualization the
// interface call site resolves to nothing, so ProcessAll's loop loses
// its lock while the direct cross-package path keeps its finding.
func TestDevirtOff(t *testing.T) {
	fs, err := VetDir(wholeprogDir, nil, VetOptions{CallGraph: true, Devirt: false})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range fs {
		if f.Kind == KindUnorderedLocks && f.Line == 25 {
			t.Errorf("devirt off, but interface-dispatch lock still inferred: %s", f)
		}
	}
	found := false
	for _, f := range fs {
		if f.Kind == KindUnorderedLocks && f.Line == 16 {
			found = true
		}
	}
	if !found {
		t.Errorf("devirt off must not affect the direct cross-package path; findings:\n%v", fs)
	}
}

// TestDiamondDedup pins satellite 2: two call paths to one acquisition
// contribute one event and one template, keyed on the leaf site.
func TestDiamondDedup(t *testing.T) {
	ps := scanCorpus(t, "testdata/src/diamond", DefaultVetOptions())
	top := factsOf(t, ps, "top")
	locks := locksOf(top)
	if len(locks) != 1 {
		t.Fatalf("diamond top: want 1 lock event after dedup, got %d: %+v", len(locks), locks)
	}
	want := []string{"left", "lockShared"}
	if !reflect.DeepEqual(locks[0].path, want) {
		t.Errorf("diamond top: path = %v, want %v (first call path wins deterministically)", locks[0].path, want)
	}
	if len(top.tmpls) != 1 {
		t.Errorf("diamond top: want 1 template after dedup, got %d: %+v", len(top.tmpls), top.tmpls)
	}
}

// TestRepeatedCalleeAcrossContexts pins the context-scoped splice
// dedup: a lock-taking callee invoked before a loop AND per element
// inside two separate loops keeps one lock event in each context, so
// both loops are flagged — matching the per-package heuristic, which
// never deduped across call sites. Two calls from the same (top-level)
// context still collapse, diamond-style.
func TestRepeatedCalleeAcrossContexts(t *testing.T) {
	const dir = "testdata/src/repeat"
	for _, tc := range []struct {
		name string
		opt  VetOptions
	}{
		{"wholeprog", DefaultVetOptions()},
		{"heuristic", VetOptions{}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			fs, err := VetDir(dir, nil, tc.opt)
			if err != nil {
				t.Fatal(err)
			}
			for _, line := range []int{22, 25} {
				ok := false
				for _, f := range fs {
					if f.Kind == KindUnorderedLocks && f.Line == line {
						ok = true
					}
				}
				if !ok {
					t.Errorf("missing unordered-locks at repeat.go:%d; findings:\n%v", line, fs)
				}
			}
		})
	}
	ps := scanCorpus(t, dir, DefaultVetOptions())
	h := factsOf(t, ps, "Handler")
	if got := len(locksOf(h)); got != 3 {
		t.Errorf("Handler lock events = %d, want 3 (pre-loop + one per loop): %+v", got, locksOf(h))
	}
	if got := len(h.tmpls); got != 3 {
		t.Errorf("Handler templates = %d, want 3 (the in-loop sends execute per element)", got)
	}
	if got := len(locksOf(factsOf(t, ps, "twice"))); got != 1 {
		t.Errorf("twice lock events = %d, want 1 (same-context repeats still dedupe)", got)
	}
}

// TestSessionSurfaceNotAnalyzed: a tree that contains the ORM/session
// type itself must not report the session-method bodies as app APIs —
// in either resolution mode (parseTarget and scanDir apply the same
// sessionMethods skip).
func TestSessionSurfaceNotAnalyzed(t *testing.T) {
	cg := scanCorpus(t, wholeprogDir, DefaultVetOptions())
	heur, err := scanDir(filepath.Join(wholeprogDir, "dao"))
	if err != nil {
		t.Fatal(err)
	}
	for _, ps := range []*pkgScan{cg, heur} {
		for _, f := range ps.facts {
			if sessionMethods[f.name] {
				t.Errorf("session method %q analyzed as an app API", f.name)
			}
		}
	}
}

// TestLoadTreeCacheInvalidation: the program cache is keyed on tree
// content, so a re-vet after a source edit in the same process sees
// the new code instead of the first load's stale findings.
func TestLoadTreeCacheInvalidation(t *testing.T) {
	dir := t.TempDir()
	writeAll := func(name, body string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	writeAll("go.mod", "module cachetest\n\ngo 1.22\n")
	writeAll("app.go", `package app

type session struct{}

func (s *session) Exec(sql string, args ...any) {}

func lockOne(s *session, id int64) {
	s.Exec(`+"`UPDATE Product SET POPULARITY = ? WHERE ID = ?`"+`, id)
}

func Handler(s *session, ids []int64) {
	for _, id := range ids {
		lockOne(s, id)
	}
}
`)
	fs, err := VetDir(dir, nil, DefaultVetOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 1 || fs[0].Kind != KindUnorderedLocks {
		t.Fatalf("initial vet: want one unordered-locks finding, got %v", fs)
	}
	// The fix: sort before locking (the loop suppression kicks in).
	writeAll("app.go", `package app

import "sort"

type session struct{}

func (s *session) Exec(sql string, args ...any) {}

func lockOne(s *session, id int64) {
	s.Exec(`+"`UPDATE Product SET POPULARITY = ? WHERE ID = ?`"+`, id)
}

func Handler(s *session, ids []int64) {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		lockOne(s, id)
	}
}
`)
	fs, err = VetDir(dir, nil, DefaultVetOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 0 {
		t.Fatalf("re-vet after edit still reports stale findings: %v", fs)
	}
}

// TestReceiverFix pins satellite 1 on the heuristic path itself:
// a multi-name receiver list now binds through its first name (the
// hazard in useMany is reported) and an unnamed-receiver method no
// longer captures plain calls of the same name (freeCall stays clean).
func TestReceiverFix(t *testing.T) {
	ps, err := scanDir("testdata/src/recv")
	if err != nil {
		t.Fatal(err)
	}
	fs := ps.Lint()
	found := false
	for _, f := range fs {
		if f.Kind == KindUnorderedLocks && f.Func == "useMany" && f.Line == 29 {
			found = true
		}
		if f.Func == "freeCall" {
			t.Errorf("false positive on freeCall (plain call bound to an unnamed-receiver method): %s", f)
		}
	}
	if !found {
		t.Errorf("multi-name receiver method not resolved; findings:\n%v", fs)
	}
}

// TestTxnBoundaryNotInlined: calls to functions that open their own
// transaction (Begin/Transactional) are boundaries — the workload
// drivers that invoke handler APIs in sequence must not merge every
// handler's statements into one phantom transaction template.
func TestTxnBoundaryNotInlined(t *testing.T) {
	ps := scanCorpus(t, "../apps/shopizer", DefaultVetOptions())
	for _, sh := range ps.Shapes(nil) {
		if sh.API == "Flow" || sh.API == "UnitTests" {
			t.Errorf("driver %s has a transaction shape (%d stmts): txn-opening callees must not inline", sh.API, len(sh.Stmts))
		}
	}
	// The boundary events themselves are recorded for the opener.
	checkout := factsOf(t, ps, "Checkout")
	var kinds []eventKind
	for _, ev := range checkout.events {
		if ev.kind == evBegin || ev.kind == evCommit {
			kinds = append(kinds, ev.kind)
		}
	}
	if len(kinds) < 2 || kinds[0] != evBegin || kinds[len(kinds)-1] != evCommit {
		t.Errorf("Checkout txn boundary events = %v, want evBegin ... evCommit", kinds)
	}
}

// Loader edge cases.
func TestLoadTreeErrors(t *testing.T) {
	if _, err := loadTree("testdata/src/definitely-missing"); err == nil {
		t.Error("loadTree on a missing directory must fail")
	}
	if _, err := loadTree("testdata/golden/f2.txt"); err == nil {
		t.Error("loadTree on a file must fail")
	}
}

func TestModulePath(t *testing.T) {
	for in, want := range map[string]string{
		"module wholeprog\n\ngo 1.22\n":     "wholeprog",
		"// a comment\nmodule  foo/bar\n":   "foo/bar",
		"module \"quoted/path\"\ngo 1.22\n": "quoted/path",
		"go 1.22\n":                         "",
	} {
		if got := modulePath([]byte(in)); got != want {
			t.Errorf("modulePath(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestLoadTreeModuleDiscovery(t *testing.T) {
	prog, err := loadTree(wholeprogDir)
	if err != nil {
		t.Fatal(err)
	}
	if prog.modPath != "wholeprog" {
		t.Errorf("modPath = %q, want wholeprog (nearest go.mod wins)", prog.modPath)
	}
	if len(prog.targets) != 3 {
		t.Errorf("targets = %d, want 3 (dao, handler, store)", len(prog.targets))
	}
	// The lint fixtures sit under the repo module: their import paths
	// are derived from the repo go.mod, and stdlib imports ("sort" in
	// the clean fixture) resolve to empty placeholder packages without
	// failing the load.
	prog2, err := loadTree("testdata/src/clean")
	if err != nil {
		t.Fatal(err)
	}
	if prog2.modPath != "weseer" {
		t.Errorf("clean fixture modPath = %q, want weseer", prog2.modPath)
	}
	if !strings.HasPrefix(prog2.targets[0].path, "weseer/") {
		t.Errorf("clean fixture import path = %q, want weseer/... prefix", prog2.targets[0].path)
	}
	if dep, ok := prog2.deps["sort"]; !ok || dep == nil || dep.Scope().Len() != 0 {
		t.Errorf("stdlib import must resolve to an empty placeholder, got %v", prog2.deps)
	}
}
