package staticlint

import (
	"fmt"

	"weseer/internal/smt"
	"weseer/internal/sqlast"
	"weseer/internal/trace"
)

// Emptiness is what the template knows about a read's result set. Trace-
// derived shapes record the observed emptiness; pure templates don't
// know, and the lock model must then cover both cases.
type Emptiness uint8

// Emptiness states.
const (
	EmptyUnknown Emptiness = iota
	EmptyYes
	EmptyNo
)

// StmtShape is the static abstraction of one statement: its template,
// the parameter values that are statically fixed, and the write-behind
// and result metadata the hazard checks need.
type StmtShape struct {
	Stmt sqlast.Stmt
	// Rigid maps a '?' ordinal to the canonical encoding of its value
	// when the value is statically pinned — an smt literal in a trace,
	// or a constant argument at a lint-extracted call site. Parameters
	// absent from the map are free.
	Rigid map[int]string
	// Empty is the read's observed result emptiness (reads only).
	Empty Emptiness
	// Deferred marks a write-behind statement: modified at its trigger
	// site but sent at the commit flush (trace: Trigger ≠ Sent).
	Deferred bool
	// File/Line locate the trigger site when known.
	File string
	Line int
}

// TxnShape is the ordered statement-template list of one transaction —
// the unit Analyzer 1 reasons over, shared by the vet CLI (templates
// extracted from source) and core's Phase-0 (trace transactions).
type TxnShape struct {
	API   string
	Stmts []StmtShape
}

// ShapeFromTemplates builds a transaction shape from bare templates
// (no parameter or result knowledge).
func ShapeFromTemplates(api string, stmts []sqlast.Stmt) TxnShape {
	sh := TxnShape{API: api}
	for _, st := range stmts {
		sh.Stmts = append(sh.Stmts, StmtShape{Stmt: st})
	}
	return sh
}

// ShapeFromTxn abstracts a recorded transaction: parameters whose
// symbolic shadow is a literal become rigid, result emptiness is taken
// from the recorded result, and Trigger ≠ Sent marks deferred writes.
func ShapeFromTxn(api string, txn *trace.Txn) TxnShape {
	sh := TxnShape{API: api}
	for _, st := range txn.Stmts {
		s := StmtShape{Stmt: st.Parsed, Empty: EmptyUnknown}
		if st.Res != nil {
			if st.Res.Empty {
				s.Empty = EmptyYes
			} else {
				s.Empty = EmptyNo
			}
		}
		if t, snt := st.Trigger.Top(), st.Sent.Top(); t != snt && snt.File != "" {
			s.Deferred = true
		}
		s.File = st.Trigger.Top().File
		s.Line = st.Trigger.Top().Line
		for ord, p := range st.Params {
			if k, ok := rigidOf(p.Sym); ok {
				if s.Rigid == nil {
					s.Rigid = map[int]string{}
				}
				s.Rigid[ord] = k
			}
		}
		sh.Stmts = append(sh.Stmts, s)
	}
	return sh
}

// rigidOf canonicalizes a symbolic parameter that is a literal — a value
// no input assignment can change, so template-level disequality on it is
// sound.
func rigidOf(e smt.Expr) (string, bool) {
	switch v := e.(type) {
	case smt.IntConst:
		return fmt.Sprintf("i:%d", v.V), true
	case smt.StrConst:
		return "s:" + v.S, true
	case smt.RealConst:
		return "r:" + v.V.RatString(), true
	case smt.BoolConst:
		return fmt.Sprintf("b:%v", v.B), true
	}
	return "", false
}

// rigidOperand canonicalizes a template operand when its value is
// statically pinned: an inline constant, or a parameter the shape holds
// a rigid value for.
func rigidOperand(o sqlast.Operand, sh StmtShape) (string, bool) {
	switch o.Kind {
	case sqlast.ConstInt:
		return fmt.Sprintf("i:%d", o.Int), true
	case sqlast.ConstStr:
		return "s:" + o.Str, true
	case sqlast.ConstReal:
		return "r:" + o.Real.RatString(), true
	case sqlast.Param:
		k, ok := sh.Rigid[o.Ord]
		return k, ok
	}
	return "", false
}
