package staticlint_test

import (
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"weseer/internal/apps/broadleaf"
	"weseer/internal/apps/shopizer"
	"weseer/internal/staticlint"
)

var update = flag.Bool("update", false, "rewrite golden files")

func render(fs []staticlint.Finding) string {
	var b strings.Builder
	for _, f := range fs {
		b.WriteString(f.String())
		b.WriteString("\n")
	}
	return b.String()
}

// TestFixturesGolden locks the exact findings on the anti-pattern
// fixtures: each exhibits its class, the clean package reports nothing.
//
// Golden delta vs PR 5: Vet now defaults to whole-program resolution,
// so the wholeprog/diamond/recv corpora report hazards whose lock sits
// in a callee — their finding details carry "via <call chain> at
// <leaf site>" provenance. The single-package f2/f4/f9/clean goldens
// are byte-identical to PR 5: their callees never resolve (the
// fixtures deliberately don't type-check and have no matching local
// declarations), so richer resolution changes nothing there.
func TestFixturesGolden(t *testing.T) {
	for _, name := range []string{"f2", "f4", "f9", "clean", "wholeprog", "diamond", "recv", "repeat"} {
		t.Run(name, func(t *testing.T) {
			fs, err := staticlint.Vet(filepath.Join("testdata", "src", name), nil)
			if err != nil {
				t.Fatal(err)
			}
			if name == "clean" && len(fs) != 0 {
				t.Fatalf("clean fixture must have zero findings, got:\n%s", render(fs))
			}
			golden := filepath.Join("testdata", "golden", name+".txt")
			got := render(fs)
			if *update {
				if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatal(err)
			}
			if got != string(want) {
				t.Errorf("findings differ from %s (re-run with -update):\ngot:\n%swant:\n%s", golden, got, want)
			}
		})
	}
}

// has reports whether a finding of the kind exists at file:line.
func has(fs []staticlint.Finding, kind, file string, line int) bool {
	for _, f := range fs {
		if f.Kind == kind && strings.HasSuffix(f.File, file) && f.Line == line {
			return true
		}
	}
	return false
}

// TestVetApps checks that both analyzers statically rediscover the
// anti-pattern classes behind the Table II fixes at their real source
// locations in the model applications.
func TestVetApps(t *testing.T) {
	bf, err := staticlint.Vet("../apps/broadleaf", broadleaf.Schema())
	if err != nil {
		t.Fatal(err)
	}
	sf, err := staticlint.Vet("../apps/shopizer", shopizer.Schema())
	if err != nil {
		t.Fatal(err)
	}
	checks := []struct {
		fs   []staticlint.Finding
		kind string
		file string
		line int
		why  string
	}{
		{bf, staticlint.KindMergeSelectInsert, "broadleaf/api.go", 38, "d1: Register's Merge (fix f1)"},
		{bf, staticlint.KindUpsertCandidate, "broadleaf/api.go", 167, "d2: cartLock's check-then-insert (fix f2)"},
		{bf, staticlint.KindFlushReorder, "broadleaf/api.go", 86, "d5: Add2's buffered offer counter (fix f4)"},
		{bf, staticlint.KindFlushReorder, "broadleaf/api.go", 87, "d6: Add2's buffered fulfillment counter (fix f4)"},
		{bf, staticlint.KindUnorderedLocks, "broadleaf/api.go", 433, "Checkout's per-item quantity loop (Sec. V-D applock site)"},
		{sf, staticlint.KindUnorderedLocks, "shopizer/api.go", 94, "d14-d16: priceProducts' per-product loop (fix f9)"},
		{sf, staticlint.KindUnorderedLocks, "shopizer/api.go", 185, "d18: readCartProducts' loop (fix f11)"},
		{sf, staticlint.KindUnorderedLocks, "shopizer/api.go", 207, "d16/d17: commitProducts' loop (fix f10)"},
		{sf, staticlint.KindUpsertCandidate, "shopizer/api.go", 60, "Add's check-then-insert of the cart item"},
		{sf, staticlint.KindLockOrderInversion, "shopizer/api.go", 100, "d14: priceProducts' read-then-write upgrade on Product"},
	}
	for _, c := range checks {
		if !has(c.fs, c.kind, c.file, c.line) {
			t.Errorf("missing %s at %s:%d (%s)\nall findings:\n%s", c.kind, c.file, c.line, c.why, render(c.fs))
		}
	}
	// The fixed helper must stay clean: serializeProducts sorts before
	// locking (fix f9's implementation).
	for _, f := range sf {
		if f.Func == "serializeProducts" {
			t.Errorf("false positive on the sorted lock helper: %s", f)
		}
	}
}

// TestJSONRoundTrip locks the versioned -json schema.
func TestJSONRoundTrip(t *testing.T) {
	fs, err := staticlint.Vet("../apps/shopizer", shopizer.Schema())
	if err != nil {
		t.Fatal(err)
	}
	data, err := staticlint.EncodeJSON(fs)
	if err != nil {
		t.Fatal(err)
	}
	back, err := staticlint.DecodeJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fs, back) {
		t.Fatalf("findings did not round-trip through JSON")
	}
	if _, err := staticlint.DecodeJSON([]byte(`{"version":99,"findings":[]}`)); err == nil {
		t.Fatal("expected version mismatch error")
	}
	var empty []staticlint.Finding
	data, err = staticlint.EncodeJSON(empty)
	if err != nil {
		t.Fatal(err)
	}
	if back, err = staticlint.DecodeJSON(data); err != nil || len(back) != 0 {
		t.Fatalf("empty report round-trip: %v %v", back, err)
	}
}
