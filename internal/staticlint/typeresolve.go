package staticlint

// Whole-program loading and type resolution for `weseer vet`, built on
// the standard library only (go/parser + go/types; no x/tools). The
// loader walks the target directory tree, parses every package found
// there, and type-checks them against a self-contained importer that
// resolves module-internal import paths by mapping them onto
// directories under the enclosing go.mod. Everything else — stdlib and
// out-of-module imports — resolves to an empty placeholder package, and
// the checker runs with a tolerant error handler, so partial or even
// broken type information degrades precision instead of aborting the
// scan (lint fixtures deliberately reference undefined identifiers).

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"hash/fnv"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// progPkg is one package found under the target tree.
type progPkg struct {
	path  string // import path (module-relative when a go.mod encloses the tree)
	dir   string // directory as given (keeps relative finding paths stable)
	name  string // package name from the first parsed file
	files []*ast.File
	decls []*ast.FuncDecl // body-bearing function decls, position order
	tpkg  *types.Package  // nil until checked
}

// program is a loaded-and-checked directory tree plus the lazily grown
// set of out-of-tree dependency packages.
type program struct {
	root    string
	fset    *token.FileSet
	modRoot string // directory holding the enclosing go.mod ("" if none)
	modPath string // its module path
	targets []*progPkg
	byPath  map[string]*progPkg
	deps    map[string]*types.Package
	depDirs map[string]bool // module directories read by loadDep (cache revalidation)
	loading map[string]bool // import paths currently being dep-checked (cycle guard)
	info    *types.Info
	typeErr int // type errors swallowed by the tolerant handler
}

// Loading a tree is pure (ASTs and type info are never mutated by the
// scan), so programs are cached: determinism tests re-vet the same
// corpus dozens of times and would otherwise re-check the world on
// every run. The cache key includes a content stamp of the target tree
// (file sizes + mtimes + the nearest go.mod), and a hit additionally
// revalidates the stamp of every module directory the lazy dep loader
// read — so a long-lived process that re-vets after source edits gets
// a fresh load instead of the first invocation's stale findings.
// Superseded entries for edited trees stay in the map until process
// exit; they are small (one program per edit) and never returned.
var (
	progMu    sync.Mutex
	progCache = map[string]progResult{}
)

type progResult struct {
	prog     *program
	err      error
	depStamp string // depsStamp at load time
}

func loadTree(dir string) (*program, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		abs = dir
	}
	// Key on both path forms (the given dir spelling decides the file
	// paths recorded in findings) plus the tree's content stamp.
	key := abs + "\x00" + dir + "\x00" + treeStamp(dir)
	progMu.Lock()
	defer progMu.Unlock()
	if r, ok := progCache[key]; ok && depsStamp(r.prog) == r.depStamp {
		return r.prog, r.err
	}
	prog, err := loadTreeUncached(dir)
	progCache[key] = progResult{prog, err, depsStamp(prog)}
	return prog, err
}

// dirStamp hashes one directory's non-test .go files (name, size,
// mtime) into h; os.ReadDir returns entries sorted, so the stamp is
// deterministic.
func dirStamp(h io.Writer, dir string) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		fmt.Fprintf(h, "%s!%v;", dir, err)
		return
	}
	for _, ent := range ents {
		name := ent.Name()
		if ent.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		info, err := ent.Info()
		if err != nil {
			fmt.Fprintf(h, "%s!%v;", name, err)
			continue
		}
		fmt.Fprintf(h, "%s=%d,%d;", name, info.Size(), info.ModTime().UnixNano())
	}
}

// treeStamp stamps the full target tree — every directory the loader
// would visit (collectGoDirs' walk rules) — plus the nearest enclosing
// go.mod, whose module path decides import resolution.
func treeStamp(dir string) string {
	h := fnv.New64a()
	var walk func(d string)
	walk = func(d string) {
		fmt.Fprintf(h, "[%s]", d)
		dirStamp(h, d)
		ents, err := os.ReadDir(d)
		if err != nil {
			return
		}
		for _, ent := range ents {
			name := ent.Name()
			if ent.IsDir() && name != "vendor" && name != "testdata" &&
				!strings.HasPrefix(name, ".") && !strings.HasPrefix(name, "_") {
				walk(filepath.Join(d, name))
			}
		}
	}
	walk(dir)
	if abs, err := filepath.Abs(dir); err == nil {
		for d := abs; ; {
			if fi, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
				fmt.Fprintf(h, "mod[%s]=%d,%d;", d, fi.Size(), fi.ModTime().UnixNano())
				break
			}
			parent := filepath.Dir(d)
			if parent == d {
				break
			}
			d = parent
		}
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// depsStamp stamps the module directories a load actually read for
// lazy dependency packages (they contribute API surface to the type
// check, so edits there invalidate too).
func depsStamp(p *program) string {
	if p == nil || len(p.depDirs) == 0 {
		return ""
	}
	dirs := make([]string, 0, len(p.depDirs))
	for d := range p.depDirs {
		dirs = append(dirs, d)
	}
	sort.Strings(dirs)
	h := fnv.New64a()
	for _, d := range dirs {
		fmt.Fprintf(h, "[%s]", d)
		dirStamp(h, d)
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

func loadTreeUncached(dir string) (*program, error) {
	st, err := os.Stat(dir)
	if err != nil {
		return nil, err
	}
	if !st.IsDir() {
		return nil, fmt.Errorf("staticlint: %s is not a directory", dir)
	}
	p := &program{
		root:    dir,
		fset:    token.NewFileSet(),
		byPath:  map[string]*progPkg{},
		deps:    map[string]*types.Package{},
		depDirs: map[string]bool{},
		loading: map[string]bool{},
		info: &types.Info{
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
		},
	}
	p.findModule(dir)

	var dirs []string
	if err := collectGoDirs(dir, &dirs); err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	for _, d := range dirs {
		tp, err := p.parseTarget(d)
		if err != nil {
			return nil, err
		}
		if tp != nil {
			p.targets = append(p.targets, tp)
			p.byPath[tp.path] = tp
		}
	}
	// Check dependencies before dependents so intra-tree imports see
	// real (body-checked) packages rather than placeholders.
	for _, tp := range p.topoTargets() {
		p.check(tp)
	}
	return p, nil
}

// collectGoDirs gathers every directory under root that holds at least
// one non-test .go file, skipping vendor/testdata and hidden or
// underscore-prefixed directories (mirroring the go tool's walk rules).
func collectGoDirs(root string, out *[]string) error {
	ents, err := os.ReadDir(root)
	if err != nil {
		return err
	}
	hasGo := false
	for _, ent := range ents {
		name := ent.Name()
		if ent.IsDir() {
			if name == "vendor" || name == "testdata" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
				continue
			}
			if err := collectGoDirs(filepath.Join(root, name), out); err != nil {
				return err
			}
			continue
		}
		if strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			hasGo = true
		}
	}
	if hasGo {
		*out = append(*out, root)
	}
	return nil
}

// findModule locates the nearest enclosing go.mod and records its
// module path; without one, packages get synthetic import paths and
// only same-tree imports can resolve.
func (p *program) findModule(dir string) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return
	}
	for d := abs; ; {
		if data, err := os.ReadFile(filepath.Join(d, "go.mod")); err == nil {
			p.modRoot = d
			p.modPath = modulePath(data)
			return
		}
		parent := filepath.Dir(d)
		if parent == d {
			return
		}
		d = parent
	}
}

func modulePath(gomod []byte) string {
	for _, line := range strings.Split(string(gomod), "\n") {
		f := strings.Fields(line)
		if len(f) >= 2 && f[0] == "module" {
			return strings.Trim(f[1], `"`)
		}
	}
	return ""
}

// importPathOf maps a target directory to the import path other
// packages would use for it.
func (p *program) importPathOf(dir string) string {
	abs, err := filepath.Abs(dir)
	if err == nil && p.modRoot != "" {
		if rel, err := filepath.Rel(p.modRoot, abs); err == nil && rel != ".." && !strings.HasPrefix(rel, ".."+string(filepath.Separator)) {
			if rel == "." {
				return p.modPath
			}
			return p.modPath + "/" + filepath.ToSlash(rel)
		}
	}
	return filepath.ToSlash(dir)
}

// parseTarget parses one target directory into a progPkg (nil when the
// directory holds no usable files). Parse errors in target files are
// real errors, matching scanDir.
func (p *program) parseTarget(dir string) (*progPkg, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	tp := &progPkg{dir: dir, path: p.importPathOf(dir)}
	for _, ent := range ents {
		name := ent.Name()
		if ent.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		path := filepath.Join(dir, name)
		f, err := parser.ParseFile(p.fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("staticlint: %w", err)
		}
		if tp.name == "" {
			tp.name = f.Name.Name
		}
		if f.Name.Name != tp.name {
			continue // stray package (e.g. main alongside a library): first wins
		}
		tp.files = append(tp.files, f)
		for _, d := range f.Decls {
			// Session-method-named declarations are the ORM surface, not
			// app APIs: skipped here exactly as scanDir skips them, so a
			// tree that contains the session type itself (or a local
			// wrapper of it) reports the same findings in both modes.
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil && !sessionMethods[fd.Name.Name] {
				tp.decls = append(tp.decls, fd)
			}
		}
	}
	if len(tp.files) == 0 {
		return nil, nil
	}
	sort.Slice(tp.decls, func(i, j int) bool { return tp.decls[i].Pos() < tp.decls[j].Pos() })
	return tp, nil
}

// topoTargets orders target packages dependencies-first via a DFS over
// intra-tree imports (deterministic: targets and their import lists are
// sorted). Import cycles — illegal Go — fall back to placeholder
// resolution for the back edge.
func (p *program) topoTargets() []*progPkg {
	seen := map[*progPkg]bool{}
	order := make([]*progPkg, 0, len(p.targets))
	var visit func(tp *progPkg)
	visit = func(tp *progPkg) {
		if seen[tp] {
			return
		}
		seen[tp] = true
		for _, imp := range targetImports(tp) {
			if dep, ok := p.byPath[imp]; ok {
				visit(dep)
			}
		}
		order = append(order, tp)
	}
	for _, tp := range p.targets {
		visit(tp)
	}
	return order
}

func targetImports(tp *progPkg) []string {
	set := map[string]bool{}
	for _, f := range tp.files {
		for _, imp := range f.Imports {
			if path := strings.Trim(imp.Path.Value, `"`); path != "" {
				set[path] = true
			}
		}
	}
	out := make([]string, 0, len(set))
	for path := range set {
		out = append(out, path)
	}
	sort.Strings(out)
	return out
}

// check type-checks one target package into the shared Info. Errors are
// counted and swallowed: fixtures (and real trees mid-refactor) may not
// type-check, and every unresolved identifier just means the call-graph
// layer falls back to the name heuristic for that site.
func (p *program) check(tp *progPkg) {
	conf := types.Config{
		Importer:    p,
		Error:       func(error) { p.typeErr++ },
		FakeImportC: true,
	}
	pkg, _ := conf.Check(tp.path, p.fset, tp.files, p.info)
	tp.tpkg = pkg
}

// Import implements types.Importer. Target packages resolve to their
// checked form; module-internal paths load lazily with function bodies
// ignored; everything else gets an empty placeholder so the checker can
// keep going.
func (p *program) Import(path string) (*types.Package, error) {
	if tp, ok := p.byPath[path]; ok && tp.tpkg != nil {
		return tp.tpkg, nil
	}
	if dep, ok := p.deps[path]; ok {
		return dep, nil
	}
	dep := p.loadDep(path)
	p.deps[path] = dep
	return dep, nil
}

func (p *program) loadDep(path string) *types.Package {
	base := path
	if i := strings.LastIndex(base, "/"); i >= 0 {
		base = base[i+1:]
	}
	placeholder := func() *types.Package {
		pkg := types.NewPackage(path, base)
		pkg.MarkComplete()
		return pkg
	}
	if p.loading[path] || p.modPath == "" {
		return placeholder()
	}
	sub := ""
	switch {
	case path == p.modPath:
		sub = "."
	case strings.HasPrefix(path, p.modPath+"/"):
		sub = path[len(p.modPath)+1:]
	default:
		return placeholder() // stdlib or external module
	}
	dir := filepath.Join(p.modRoot, filepath.FromSlash(sub))
	p.depDirs[dir] = true // revalidated on cache hits (depsStamp)
	ents, err := os.ReadDir(dir)
	if err != nil {
		return placeholder()
	}
	p.loading[path] = true
	defer delete(p.loading, path)
	var files []*ast.File
	name := ""
	for _, ent := range ents {
		n := ent.Name()
		if ent.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(p.fset, filepath.Join(dir, n), nil, parser.SkipObjectResolution)
		if err != nil {
			continue
		}
		if name == "" {
			name = f.Name.Name
		}
		if f.Name.Name != name {
			continue
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return placeholder()
	}
	conf := types.Config{
		Importer:         p,
		Error:            func(error) { p.typeErr++ },
		FakeImportC:      true,
		IgnoreFuncBodies: true, // deps only contribute their API surface
	}
	pkg, _ := conf.Check(path, p.fset, files, nil)
	if pkg == nil {
		return placeholder()
	}
	pkg.MarkComplete()
	return pkg
}
