package staticlint

import (
	"fmt"
	"sort"
	"strings"

	"weseer/internal/schema"
)

// Cross-API lock-order canonicalization. The paper's highest-leverage
// fixes (f9–f11) are reorderings: pick one global table-acquisition
// order and make every transaction follow it, killing whole families of
// lock-order-inversion deadlocks at once. This file derives that order
// from the merged lock-order graph (lockgraph.go):
//
//   - Where the graph is acyclic, every template already agrees on a
//     partial order and the canonical order is its deterministic
//     topological linearization.
//   - Where it is not, a small feedback-edge set is computed — a
//     weighted Eades–Lin–Smyth greedy sequence whose back edges are
//     filtered to edges genuinely on a cycle, then reduced to an
//     irredundant set biased toward cutting light (few-template) edges.
//     The feedback edges *are* the ranked fix suggestions: each names
//     the violating acquisition direction, the templates and source
//     sites that vote for it, and the majority that supports the
//     canonical direction.
//
// Everything here is deterministic: node indexes are sorted-key order,
// ties break on node keys, and votes are deduplicated and sorted, so
// the output is byte-identical across runs and independent of map
// iteration order.

// Suggestion is one ranked reorder suggestion: a feedback edge of the
// lock-order graph. Templates that acquire From before To contradict
// the canonical order (which puts To first); reordering their
// acquisition sites removes every inversion family this edge feeds.
type Suggestion struct {
	Rank int    `json:"rank"`
	From string `json:"from"` // acquired first by the violators
	To   string `json:"to"`   // the canonical order puts this node first

	// Violators counts templates acquiring From before To; Supporters
	// counts templates acquiring To before From (the majority evidence
	// the ranking follows).
	Violators  int `json:"violators"`
	Supporters int `json:"supporters"`

	// Sites are the violating acquisition sites to reorder; Evidence
	// the sites supporting the canonical direction.
	Sites    []Vote `json:"sites"`
	Evidence []Vote `json:"evidence,omitempty"`
}

// TemplateAPIs returns the distinct transaction templates whose
// acquisition sites violate the suggestion — the identities a fix plan
// uses to match a suggestion to the templates it would rewrite. Sites
// are already sorted and deduplicated, so the result is deterministic.
func (s Suggestion) TemplateAPIs() []string {
	var out []string
	for _, v := range s.Sites {
		if n := len(out); n == 0 || out[n-1] != v.API {
			out = append(out, v.API)
		}
	}
	return out
}

// CanonicalOrder is the result of lock-order canonicalization: the
// global acquisition order plus the ranked reorder suggestions where
// templates disagree.
type CanonicalOrder struct {
	// Order lists every lock-order node key in canonical acquisition
	// order — a topological order of the lock-order graph minus the
	// feedback edges behind Suggestions.
	Order []string `json:"order"`
	// Templates and Edges size the graph the order was derived from.
	Templates int `json:"templates"`
	Edges     int `json:"edges"`
	// Suggestions are the feedback edges, ranked strongest majority
	// first. Empty when every template already agrees (acyclic graph).
	Suggestions []Suggestion `json:"suggestions,omitempty"`
}

// CanonicalizeShapes is the one-call form: build the lock-order graph
// from the shapes and canonicalize it. scm may be nil (no row-level
// node narrowing).
func CanonicalizeShapes(shapes []TxnShape, scm *schema.Schema) *CanonicalOrder {
	return BuildLockOrderGraph(shapes, scm).Canonicalize()
}

// Canonicalize computes the canonical global lock order and the ranked
// feedback-edge suggestions.
func (g *LockOrderGraph) Canonicalize() *CanonicalOrder {
	fb := g.feedbackEdges()
	co := &CanonicalOrder{
		Order:     g.topoOrder(fb),
		Templates: g.templates,
	}
	for u := range g.nodes {
		for v := range g.nodes {
			if g.w[u][v] > 0 {
				co.Edges++
			}
		}
	}
	for _, e := range fb {
		u, v := e[0], e[1]
		co.Suggestions = append(co.Suggestions, Suggestion{
			From:       g.nodes[u].Key(),
			To:         g.nodes[v].Key(),
			Violators:  g.w[u][v],
			Supporters: g.w[v][u],
			Sites:      g.edgeVotes(u, v),
			Evidence:   g.edgeVotes(v, u),
		})
	}
	sort.SliceStable(co.Suggestions, func(i, j int) bool {
		a, b := co.Suggestions[i], co.Suggestions[j]
		if a.Supporters != b.Supporters {
			return a.Supporters > b.Supporters // strongest majority first
		}
		if a.Violators != b.Violators {
			return a.Violators < b.Violators // cheapest reorder next
		}
		if a.From != b.From {
			return a.From < b.From
		}
		return a.To < b.To
	})
	for i := range co.Suggestions {
		co.Suggestions[i].Rank = i + 1
	}
	return co
}

// feedbackEdges returns a small edge set whose removal makes the graph
// acyclic, as sorted [from, to] index pairs. Empty when the graph
// already is.
func (g *LockOrderGraph) feedbackEdges() [][2]int {
	n := len(g.nodes)
	if n == 0 {
		return nil
	}
	pos := g.elsPositions()

	// Back edges of the ELS sequence break every cycle; keep only those
	// genuinely on a cycle (the target reaches the source), which still
	// breaks every cycle — all of a cycle's edges are on that cycle, so
	// each cycle retains at least one of its back edges in the set.
	var fb [][2]int
	inFB := map[[2]int]bool{}
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if g.w[u][v] > 0 && pos[u] > pos[v] && g.reaches(v, u) {
				fb = append(fb, [2]int{u, v})
				inFB[[2]int{u, v}] = true
			}
		}
	}

	// Irredundancy pass: re-admit edges the set does not actually need,
	// heaviest (best-supported) first, so the cuts that remain fall on
	// the lightest-supported directions.
	cands := append([][2]int(nil), fb...)
	sort.Slice(cands, func(i, j int) bool {
		wi, wj := g.w[cands[i][0]][cands[i][1]], g.w[cands[j][0]][cands[j][1]]
		if wi != wj {
			return wi > wj
		}
		if cands[i][0] != cands[j][0] {
			return cands[i][0] < cands[j][0]
		}
		return cands[i][1] < cands[j][1]
	})
	for _, e := range cands {
		delete(inFB, e)
		if !g.acyclicWithout(inFB) {
			inFB[e] = true
		}
	}
	fb = fb[:0]
	for e := range inFB {
		fb = append(fb, e)
	}
	sort.Slice(fb, func(i, j int) bool {
		if fb[i][0] != fb[j][0] {
			return fb[i][0] < fb[j][0]
		}
		return fb[i][1] < fb[j][1]
	})
	return fb
}

// elsPositions runs the weighted Eades–Lin–Smyth greedy: repeatedly
// peel sinks to the back and sources to the front, otherwise move the
// node with the largest out-weight minus in-weight to the front, so
// heavy agreement points forward and back edges are few and light. On
// an acyclic graph the result is a topological order (no back edges).
// Ties break on the (sorted-key) node index, making the sequence — and
// everything derived from it — deterministic.
func (g *LockOrderGraph) elsPositions() []int {
	n := len(g.nodes)
	alive := make([]bool, n)
	for i := range alive {
		alive[i] = true
	}
	left := n
	outW := func(u int) int {
		s := 0
		for v := 0; v < n; v++ {
			if alive[v] && g.w[u][v] > 0 {
				s += g.w[u][v]
			}
		}
		return s
	}
	inW := func(u int) int {
		s := 0
		for v := 0; v < n; v++ {
			if alive[v] && g.w[v][u] > 0 {
				s += g.w[v][u]
			}
		}
		return s
	}
	var s1, s2 []int // s2 is built back-to-front
	for left > 0 {
		for {
			sink := -1
			for u := 0; u < n; u++ {
				if alive[u] && outW(u) == 0 {
					sink = u
					break
				}
			}
			if sink < 0 {
				break
			}
			alive[sink] = false
			left--
			s2 = append(s2, sink)
		}
		for {
			src := -1
			for u := 0; u < n; u++ {
				if alive[u] && inW(u) == 0 {
					src = u
					break
				}
			}
			if src < 0 {
				break
			}
			alive[src] = false
			left--
			s1 = append(s1, src)
		}
		if left == 0 {
			break
		}
		best, bestDelta := -1, 0
		for u := 0; u < n; u++ {
			if !alive[u] {
				continue
			}
			d := outW(u) - inW(u)
			if best < 0 || d > bestDelta {
				best, bestDelta = u, d
			}
		}
		alive[best] = false
		left--
		s1 = append(s1, best)
	}
	pos := make([]int, n)
	for i, u := range s1 {
		pos[u] = i
	}
	for i, u := range s2 {
		pos[u] = n - 1 - i
	}
	return pos
}

// acyclicWithout reports whether the graph minus the excluded edges is
// acyclic (Kahn's algorithm).
func (g *LockOrderGraph) acyclicWithout(excluded map[[2]int]bool) bool {
	n := len(g.nodes)
	indeg := make([]int, n)
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if g.w[u][v] > 0 && !excluded[[2]int{u, v}] {
				indeg[v]++
			}
		}
	}
	queue := make([]int, 0, n)
	for u := 0; u < n; u++ {
		if indeg[u] == 0 {
			queue = append(queue, u)
		}
	}
	done := 0
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		done++
		for v := 0; v < n; v++ {
			if g.w[u][v] > 0 && !excluded[[2]int{u, v}] {
				indeg[v]--
				if indeg[v] == 0 {
					queue = append(queue, v)
				}
			}
		}
	}
	return done == n
}

// topoOrder linearizes the graph minus the feedback edges: Kahn's
// algorithm, always emitting the smallest-index (smallest-key) ready
// node, so the canonical order is unique and deterministic.
func (g *LockOrderGraph) topoOrder(fb [][2]int) []string {
	n := len(g.nodes)
	excluded := map[[2]int]bool{}
	for _, e := range fb {
		excluded[e] = true
	}
	indeg := make([]int, n)
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if g.w[u][v] > 0 && !excluded[[2]int{u, v}] {
				indeg[v]++
			}
		}
	}
	emitted := make([]bool, n)
	order := make([]string, 0, n)
	for len(order) < n {
		next := -1
		for u := 0; u < n; u++ {
			if !emitted[u] && indeg[u] == 0 {
				next = u
				break
			}
		}
		if next < 0 {
			// Unreachable when fb breaks every cycle; emit the remaining
			// nodes in key order rather than looping forever.
			for u := 0; u < n; u++ {
				if !emitted[u] {
					emitted[u] = true
					order = append(order, g.nodes[u].Key())
				}
			}
			break
		}
		emitted[next] = true
		order = append(order, g.nodes[next].Key())
		for v := 0; v < n; v++ {
			if g.w[next][v] > 0 && !excluded[[2]int{next, v}] {
				indeg[v]--
			}
		}
	}
	return order
}

// SuggestionFor returns the suggestion whose feedback edge runs between
// the two node keys in either direction (nil when the pair is not a
// conflict).
func (co *CanonicalOrder) SuggestionFor(a, b string) *Suggestion {
	for i := range co.Suggestions {
		s := &co.Suggestions[i]
		if (s.From == a && s.To == b) || (s.From == b && s.To == a) {
			return s
		}
	}
	return nil
}

// Render formats the canonical order and its ranked suggestions as the
// `weseer vet -canonical-order` text report.
func (co *CanonicalOrder) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "canonical lock-acquisition order (%d nodes from %d templates, %d edges, %d conflicting):\n",
		len(co.Order), co.Templates, co.Edges, len(co.Suggestions))
	for i, key := range co.Order {
		fmt.Fprintf(&b, "  %2d. %s\n", i+1, key)
	}
	if len(co.Suggestions) == 0 {
		b.WriteString("no conflicts: every template agrees with the canonical order\n")
		return b.String()
	}
	b.WriteString("reorder suggestions (feedback edges, strongest majority first):\n")
	for _, s := range co.Suggestions {
		fmt.Fprintf(&b, "  #%d acquire %s before %s: %d template(s) against %d\n",
			s.Rank, s.To, s.From, s.Violators, s.Supporters)
		for _, v := range s.Sites {
			fmt.Fprintf(&b, "      reorder %s at %s\n", v.API, siteOf(v))
		}
		for _, v := range s.Evidence {
			fmt.Fprintf(&b, "      keeps   %s at %s\n", v.API, siteOf(v))
		}
	}
	return b.String()
}

func siteOf(v Vote) string {
	if v.File == "" {
		return "(template)"
	}
	return fmt.Sprintf("%s:%d", v.File, v.Line)
}
