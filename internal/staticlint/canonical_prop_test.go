package staticlint

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"testing"

	"weseer/internal/sqlast"
)

// Property test for lock-order canonicalization: on seeded random
// workloads the canonical order must be a valid topological order of
// the lock-order graph minus the reported feedback edges, every
// feedback edge must lie on at least one cycle, and the whole output
// must be byte-deterministic — identical across rebuilds and
// independent of the order shapes arrive in (and hence of map
// iteration order, which varies per build).

// randomShapes derives a random workload from the seed: 1–10 templates,
// each 2–6 statements over 2–8 tables, each statement a read or a
// write. Statements are bare templates (no rigid keys, nil schema), so
// nodes are table-level.
func randomShapes(seed int64) []TxnShape {
	rng := rand.New(rand.NewSource(seed))
	nTables := 2 + rng.Intn(7)
	type stmtKey struct {
		table int
		write bool
	}
	stmts := map[stmtKey]sqlast.Stmt{}
	stmtOf := func(table int, write bool) sqlast.Stmt {
		k := stmtKey{table, write}
		if st, ok := stmts[k]; ok {
			return st
		}
		var sql string
		if write {
			sql = fmt.Sprintf("UPDATE T%d SET V = ? WHERE ID = ?", table)
		} else {
			sql = fmt.Sprintf("SELECT * FROM T%d x WHERE x.ID = ?", table)
		}
		st := sqlast.MustParse(sql)
		stmts[k] = st
		return st
	}
	nShapes := 1 + rng.Intn(10)
	shapes := make([]TxnShape, 0, nShapes)
	for i := 0; i < nShapes; i++ {
		sh := TxnShape{API: fmt.Sprintf("api%d", i)}
		for s, n := 0, 2+rng.Intn(5); s < n; s++ {
			sh.Stmts = append(sh.Stmts, StmtShape{
				Stmt: stmtOf(rng.Intn(nTables), rng.Intn(2) == 0),
				File: fmt.Sprintf("api%d.go", i), Line: s + 1,
			})
		}
		shapes = append(shapes, sh)
	}
	return shapes
}

// checkCanonicalProperties asserts the canonicalization invariants on
// one workload.
func checkCanonicalProperties(t *testing.T, seed int64, shapes []TxnShape) {
	t.Helper()
	g := BuildLockOrderGraph(shapes, nil)
	co := g.Canonicalize()

	// The order lists every node exactly once.
	keys := g.NodeKeys()
	if len(co.Order) != len(keys) {
		t.Fatalf("seed %d: order has %d entries, graph %d nodes", seed, len(co.Order), len(keys))
	}
	pos := map[string]int{}
	for i, k := range co.Order {
		if _, dup := pos[k]; dup {
			t.Fatalf("seed %d: node %s appears twice in the order", seed, k)
		}
		pos[k] = i
	}
	for _, k := range keys {
		if _, ok := pos[k]; !ok {
			t.Fatalf("seed %d: node %s missing from the order", seed, k)
		}
	}

	// Feedback edges must be real graph edges with consistent weights,
	// and the order a valid topological order of the remaining edges.
	edges := g.EdgeKeys()
	if co.Edges != len(edges) {
		t.Fatalf("seed %d: co.Edges = %d, graph has %d", seed, co.Edges, len(edges))
	}
	feedback := map[[2]string]bool{}
	for _, s := range co.Suggestions {
		if w := g.Weight(s.From, s.To); w == 0 || w != s.Violators {
			t.Fatalf("seed %d: suggestion %s->%s: violators %d, edge weight %d",
				seed, s.From, s.To, s.Violators, w)
		}
		if w := g.Weight(s.To, s.From); w != s.Supporters {
			t.Fatalf("seed %d: suggestion %s->%s: supporters %d, reverse weight %d",
				seed, s.From, s.To, s.Supporters, w)
		}
		feedback[[2]string{s.From, s.To}] = true
	}
	adj := map[string][]string{}
	for _, e := range edges {
		adj[e[0]] = append(adj[e[0]], e[1])
		if feedback[e] {
			continue
		}
		if pos[e[0]] >= pos[e[1]] {
			t.Fatalf("seed %d: order violates non-feedback edge %s -> %s", seed, e[0], e[1])
		}
	}

	// Every feedback edge lies on a cycle: its target must reach its
	// source through the full edge set.
	reach := func(from, to string) bool {
		seen := map[string]bool{from: true}
		stack := []string{from}
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if u == to {
				return true
			}
			for _, v := range adj[u] {
				if !seen[v] {
					seen[v] = true
					stack = append(stack, v)
				}
			}
		}
		return false
	}
	for _, s := range co.Suggestions {
		if !reach(s.To, s.From) {
			t.Fatalf("seed %d: feedback edge %s -> %s is not on any cycle", seed, s.From, s.To)
		}
		if s.Rank == 0 || len(s.Sites) == 0 {
			t.Fatalf("seed %d: suggestion %s -> %s lacks rank or sites", seed, s.From, s.To)
		}
	}

	// Byte determinism: rebuilding — from the same shapes and from
	// shuffled shapes — must reproduce the text and JSON output exactly.
	// Map iteration order differs per rebuild, so this also catches
	// map-ranged emission.
	text, jsonBytes := co.Render(), mustJSON(t, co)
	shuffled := append([]TxnShape(nil), shapes...)
	rng := rand.New(rand.NewSource(seed + 1))
	for trial := 0; trial < 3; trial++ {
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		again := BuildLockOrderGraph(shuffled, nil).Canonicalize()
		if got := again.Render(); got != text {
			t.Fatalf("seed %d: render not deterministic under input shuffle:\n got %q\nwant %q", seed, got, text)
		}
		if got := mustJSON(t, again); string(got) != string(jsonBytes) {
			t.Fatalf("seed %d: JSON not deterministic under input shuffle", seed)
		}
	}
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return b
}

// TestCanonicalOrderProperties drives the invariant checker over 500
// seeded random workloads (more with -count or outside -short via the
// fuzz target below).
func TestCanonicalOrderProperties(t *testing.T) {
	for seed := int64(0); seed < 500; seed++ {
		checkCanonicalProperties(t, seed, randomShapes(seed))
	}
}

// FuzzCanonicalOrder exposes the same invariants to the fuzzer: any
// seed the engine invents must uphold them.
func FuzzCanonicalOrder(f *testing.F) {
	for seed := int64(0); seed < 16; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		checkCanonicalProperties(t, seed, randomShapes(seed))
	})
}
