// Package staticlint is WeSEER's static Phase-0: deadlock analysis that
// runs before (or entirely without) concolic execution and SMT solving.
//
// It bundles two analyzers:
//
//   - Analyzer 1 (template pre-screen, prescreen.go): from sqlast
//     statement templates and schema metadata alone it models each
//     transaction's lock-acquisition order, refutes SC-graph candidate
//     cycles whose C-edges pin provably disjoint rows, and flags
//     template-level hazards — lock-order inversions, write-behind
//     flush reordering (the d5/d6 class), and gap/next-key escalation
//     on unindexed predicates. internal/core consumes it as
//     Options.StaticPrescreen to prune candidate pairs and skip solver
//     calls.
//
//   - Analyzer 2 (ORM-misuse source lint, lint.go): a stdlib go/ast
//     scan of application packages for the anti-patterns behind the
//     paper's Table II fixes — Merge-induced SELECT-then-INSERT (f1),
//     check-then-insert UPSERT candidates (f2), deferred-flush writes
//     reordered past session reads (f4), and unordered multi-entity
//     lock acquisition (f9).
//
// Both analyzers report Findings; `weseer vet` prints them as text or
// versioned JSON.
package staticlint

import (
	"encoding/json"
	"fmt"
	"sort"
)

// Severity ranks findings; `weseer vet -fail-on` gates the exit code on
// the highest severity reported.
type Severity uint8

// Severities, in ascending order.
const (
	SevInfo Severity = iota
	SevWarn
	SevError
)

func (s Severity) String() string {
	switch s {
	case SevInfo:
		return "info"
	case SevWarn:
		return "warn"
	case SevError:
		return "error"
	}
	return fmt.Sprintf("Severity(%d)", uint8(s))
}

// ParseSeverity parses "info", "warn" or "error".
func ParseSeverity(s string) (Severity, error) {
	switch s {
	case "info":
		return SevInfo, nil
	case "warn":
		return SevWarn, nil
	case "error":
		return SevError, nil
	}
	return 0, fmt.Errorf("staticlint: unknown severity %q (want info|warn|error)", s)
}

// MarshalText implements encoding.TextMarshaler.
func (s Severity) MarshalText() ([]byte, error) { return []byte(s.String()), nil }

// UnmarshalText implements encoding.TextUnmarshaler.
func (s *Severity) UnmarshalText(b []byte) error {
	v, err := ParseSeverity(string(b))
	if err != nil {
		return err
	}
	*s = v
	return nil
}

// Finding kinds reported by the two analyzers.
const (
	// Analyzer 1 (template pre-screen).
	KindLockOrderInversion = "lock-order-inversion"
	KindFlushReorder       = "flush-reorder"
	KindGapEscalation      = "gap-escalation"
	// Analyzer 2 (ORM-misuse lint).
	KindMergeSelectInsert = "merge-select-insert"
	KindUpsertCandidate   = "upsert-candidate"
	KindUnorderedLocks    = "unordered-locks"
)

// Finding is one static-analysis report, in the trigger-code style of
// the dynamic reports (Sec. VI): the source location that plants the
// hazard, not the statement that trips it.
type Finding struct {
	Analyzer string   `json:"analyzer"` // "prescreen" or "ormlint"
	Kind     string   `json:"kind"`
	Severity Severity `json:"severity"`
	File     string   `json:"file,omitempty"`
	Line     int      `json:"line,omitempty"`
	Func     string   `json:"func,omitempty"`  // enclosing function or API
	Table    string   `json:"table,omitempty"` // involved table, if known
	Detail   string   `json:"detail"`
}

func (f Finding) String() string {
	loc := "(template)"
	if f.File != "" {
		loc = fmt.Sprintf("%s:%d", f.File, f.Line)
	}
	tab := ""
	if f.Table != "" {
		tab = " [" + f.Table + "]"
	}
	return fmt.Sprintf("%s: %s %s%s: %s (%s)", loc, f.Severity, f.Kind, tab, f.Detail, f.Func)
}

// Sort orders findings deterministically: file, line, kind, table,
// detail, func — a total order over every emitted field, so the report
// never depends on emission (or map-iteration) order. Template findings
// (no file) sort after source findings.
func Sort(fs []Finding) {
	sort.SliceStable(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if (a.File == "") != (b.File == "") {
			return a.File != ""
		}
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.Table != b.Table {
			return a.Table < b.Table
		}
		if a.Detail != b.Detail {
			return a.Detail < b.Detail
		}
		return a.Func < b.Func
	})
}

// MaxSeverity returns the highest severity among the findings, and false
// when there are none.
func MaxSeverity(fs []Finding) (Severity, bool) {
	if len(fs) == 0 {
		return 0, false
	}
	max := fs[0].Severity
	for _, f := range fs[1:] {
		if f.Severity > max {
			max = f.Severity
		}
	}
	return max, true
}

// ---------------------------------------------------------------------------
// JSON report

// JSONVersion is the schema version of the `weseer vet -json` output.
const JSONVersion = 1

type reportJSON struct {
	Version  int       `json:"version"`
	Findings []Finding `json:"findings"`
	// Canonical carries the cross-API lock-order canonicalization when
	// `weseer vet -canonical-order` requested it; absent otherwise, so
	// version-1 reports stay backward compatible.
	Canonical *CanonicalOrder `json:"canonical_order,omitempty"`
}

// EncodeJSON renders findings as the versioned vet report.
func EncodeJSON(fs []Finding) ([]byte, error) {
	return EncodeReport(fs, nil)
}

// EncodeReport renders the versioned vet report, optionally carrying the
// canonical lock-order section (-canonical-order).
func EncodeReport(fs []Finding, co *CanonicalOrder) ([]byte, error) {
	if fs == nil {
		fs = []Finding{}
	}
	return json.MarshalIndent(reportJSON{Version: JSONVersion, Findings: fs, Canonical: co}, "", "  ")
}

// DecodeJSON parses a vet report, checking the version field.
func DecodeJSON(data []byte) ([]Finding, error) {
	fs, _, err := DecodeReport(data)
	return fs, err
}

// DecodeReport parses a vet report including the optional canonical
// lock-order section (nil when the report has none).
func DecodeReport(data []byte) ([]Finding, *CanonicalOrder, error) {
	var r reportJSON
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, nil, fmt.Errorf("staticlint: bad report: %w", err)
	}
	if r.Version != JSONVersion {
		return nil, nil, fmt.Errorf("staticlint: report version %d, want %d", r.Version, JSONVersion)
	}
	return r.Findings, r.Canonical, nil
}
