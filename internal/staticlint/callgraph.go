package staticlint

// The call-graph layer of whole-program vet. Nodes are the function
// declarations of every target package, keyed on their *types.Func
// objects; call sites resolve through go/types (static calls and
// method values), through CHA-style devirtualization for interface
// call sites, and — only where type information is missing — through
// the old per-package receiver-name heuristic. The graph is condensed
// into SCCs (Tarjan) and per-function transitive summaries are
// computed bottom-up to a fixed point, so a handler's event sequence
// includes everything its callees do: across packages, through
// interfaces, and through recursion. Summaries dedupe on the leaf
// (kind, file, line) identity, which makes the fixpoint monotone; the
// splice back into caller facts additionally scopes that dedup per
// call-site context (spliceCtx), so diamond call paths don't
// double-count one acquisition but a callee invoked both before and
// inside a loop still registers its per-element in-loop acquisition.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// sumEvent is one transitively reachable event: kind plus the leaf
// site where it really happens and the callee chain below the caller
// that reaches it.
type sumEvent struct {
	kind   eventKind
	file   string
	line   int
	uncond bool
	entTab string
	col    string
	path   []string
}

// sumTmpl is a transitively reachable statement template.
type sumTmpl struct {
	kind       tmplKind
	file       string
	line       int
	sql        string
	table, col string
	path       []string
}

type funcSum struct {
	events []sumEvent
	tmpls  []sumTmpl
	evKeys map[string]bool
	tmKeys map[string]bool
}

func newFuncSum() *funcSum {
	return &funcSum{evKeys: map[string]bool{}, tmKeys: map[string]bool{}}
}

func eventKey(kind eventKind, file string, line int, entTab, col string) string {
	return fmt.Sprintf("%d|%s|%d|%s|%s", kind, file, line, entTab, col)
}

func tmplKey(kind tmplKind, file string, line int, sql, table, col string) string {
	return fmt.Sprintf("%d|%s|%d|%s|%s|%s", kind, file, line, sql, table, col)
}

func (s *funcSum) addEvent(e sumEvent) bool {
	k := eventKey(e.kind, e.file, e.line, e.entTab, e.col)
	if s.evKeys[k] {
		return false
	}
	s.evKeys[k] = true
	s.events = append(s.events, e)
	return true
}

func (s *funcSum) addTmpl(t sumTmpl) bool {
	k := tmplKey(t.kind, t.file, t.line, t.sql, t.table, t.col)
	if s.tmKeys[k] {
		return false
	}
	s.tmKeys[k] = true
	s.tmpls = append(s.tmpls, t)
	return true
}

// cgNode is one function declaration in the program.
type cgNode struct {
	id      int
	pkg     *progPkg
	decl    *ast.FuncDecl
	fn      *types.Func // nil when type checking produced no object
	name    string
	recv    string // first receiver ident ("" = unnamed or plain func)
	recvTyp string // receiver type name, for display
	isMeth  bool
	facts   *fnFacts
	callees [][]int // per facts.calls index: resolved callee node ids
	sum     *funcSum
}

type callGraph struct {
	prog   *program
	opt    VetOptions
	ps     *pkgScan
	nodes  []*cgNode
	byFunc map[*types.Func]*cgNode
	byName map[*progPkg]map[string][]*cgNode
	sccs   [][]int // Tarjan pop order: callees' components before callers'
}

// scan interprets every function of every target package with call
// sites deferred, resolves the call graph, computes transitive
// summaries, and splices them back into the per-function facts. The
// result is a merged pkgScan the lint and shape layers consume exactly
// as they would a single-package heuristic scan.
func (p *program) scan(opt VetOptions) *pkgScan {
	ps := newPkgScan(p.fset, p.root)
	ps.deferCalls = true
	g := &callGraph{
		prog:   p,
		opt:    opt,
		ps:     ps,
		byFunc: map[*types.Func]*cgNode{},
		byName: map[*progPkg]map[string][]*cgNode{},
	}
	for _, tp := range p.targets {
		g.byName[tp] = map[string][]*cgNode{}
		for _, fd := range tp.decls {
			n := &cgNode{
				id:      len(g.nodes),
				pkg:     tp,
				decl:    fd,
				name:    fd.Name.Name,
				recv:    recvIdent(fd),
				recvTyp: recvTypeName(fd),
				isMeth:  fd.Recv != nil,
				facts:   ps.interpret(fd),
			}
			if obj, ok := p.info.Defs[fd.Name]; ok {
				if fn, ok := obj.(*types.Func); ok {
					n.fn = fn
					g.byFunc[fn.Origin()] = n
				}
			}
			g.nodes = append(g.nodes, n)
			g.byName[tp][n.name] = append(g.byName[tp][n.name], n)
			ps.decls = append(ps.decls, fd)
			ps.facts = append(ps.facts, n.facts)
		}
	}
	g.resolve()
	g.condense()
	g.summarize()
	g.splice()
	return ps
}

// resolve binds every deferred call site to its callee node(s) and
// records the binding for the precision-delta accounting.
func (g *callGraph) resolve() {
	for _, n := range g.nodes {
		n.callees = make([][]int, len(n.facts.calls))
		for i, c := range n.facts.calls {
			ids := g.resolveSite(n, c)
			n.callees[i] = ids
			for _, id := range ids {
				key := fmt.Sprintf("%s:%d", n.facts.file, c.line)
				g.ps.resolved[key] = append(g.ps.resolved[key], g.display(n, g.nodes[id]))
			}
		}
	}
}

func (g *callGraph) resolveSite(n *cgNode, c callSite) []int {
	switch fun := c.call.Fun.(type) {
	case *ast.Ident:
		if obj, ok := g.prog.info.Uses[fun]; ok {
			return g.staticTarget(obj)
		}
	case *ast.SelectorExpr:
		if sel, ok := g.prog.info.Selections[fun]; ok && sel.Kind() == types.MethodVal {
			fn, _ := sel.Obj().(*types.Func)
			if fn == nil {
				return nil
			}
			if iface, ok := sel.Recv().Underlying().(*types.Interface); ok {
				if !g.opt.Devirt {
					return nil
				}
				return g.chaCandidates(fn, iface)
			}
			return g.staticTarget(fn)
		}
		// Qualified call (pkg.Func) or method expression: Uses carries
		// the object even without a Selection entry.
		if obj, ok := g.prog.info.Uses[fun.Sel]; ok {
			return g.staticTarget(obj)
		}
	default:
		return nil
	}
	// go/types produced nothing for this site (the package doesn't
	// fully type-check): fall back to the per-package name heuristic.
	return g.heuristicSite(n, c)
}

// staticTarget maps a resolved object to its node; a typed callee that
// lives outside the target tree resolves to nothing (no fallback — the
// types are authoritative).
func (g *callGraph) staticTarget(obj types.Object) []int {
	if fn, ok := obj.(*types.Func); ok {
		if tn, ok := g.byFunc[fn.Origin()]; ok {
			return []int{tn.id}
		}
	}
	return nil
}

// heuristicSite is the pre-callgraph resolution rule, scoped to the
// call's own package: a method call binds when the receiver ident
// matches the declared receiver name, a plain call binds to a plain
// function of that name.
func (g *callGraph) heuristicSite(n *cgNode, c callSite) []int {
	for _, cand := range g.byName[n.pkg][c.name] {
		if c.isMethod {
			sel := c.call.Fun.(*ast.SelectorExpr)
			if cand.isMeth && cand.recv != "" && identName(sel.X) == cand.recv {
				return []int{cand.id}
			}
		} else if !cand.isMeth {
			return []int{cand.id}
		}
	}
	return nil
}

// chaCandidates devirtualizes an interface call site by Class
// Hierarchy Analysis: every named non-interface type declared in a
// target package whose method set (value or pointer) implements the
// interface contributes its implementation of the called method.
func (g *callGraph) chaCandidates(fn *types.Func, iface *types.Interface) []int {
	var ids []int
	seen := map[int]bool{}
	for _, tp := range g.prog.targets {
		if tp.tpkg == nil {
			continue
		}
		scope := tp.tpkg.Scope()
		for _, name := range scope.Names() { // Names() is sorted
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok || types.IsInterface(named) {
				continue
			}
			var recv types.Type
			switch {
			case types.Implements(named, iface):
				recv = named
			case types.Implements(types.NewPointer(named), iface):
				recv = types.NewPointer(named)
			default:
				continue
			}
			obj, _, _ := types.LookupFieldOrMethod(recv, true, fn.Pkg(), fn.Name())
			impl, ok := obj.(*types.Func)
			if !ok {
				continue
			}
			if node, ok := g.byFunc[impl.Origin()]; ok && !seen[node.id] {
				seen[node.id] = true
				ids = append(ids, node.id)
			}
		}
	}
	sort.Ints(ids)
	return ids
}

// condense runs Tarjan's SCC algorithm; components are emitted callees
// first, which is exactly the order the fixpoint wants.
func (g *callGraph) condense() {
	n := len(g.nodes)
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = -1
	}
	var stack []int
	next := 0
	var strong func(v int)
	strong = func(v int) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, edges := range g.nodes[v].callees {
			for _, w := range edges {
				if index[w] == -1 {
					strong(w)
					if low[w] < low[v] {
						low[v] = low[w]
					}
				} else if onStack[w] && index[w] < low[v] {
					low[v] = index[w]
				}
			}
		}
		if low[v] == index[v] {
			var scc []int
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				scc = append(scc, w)
				if w == v {
					break
				}
			}
			sort.Ints(scc)
			g.sccs = append(g.sccs, scc)
		}
	}
	for v := 0; v < n; v++ {
		if index[v] == -1 {
			strong(v)
		}
	}
}

// summarize computes each node's transitive summary. Within an SCC the
// members iterate to a fixed point; dedup on leaf identity bounds every
// summary by the program's event sites, so the iteration terminates.
func (g *callGraph) summarize() {
	for _, scc := range g.sccs {
		for _, id := range scc {
			g.nodes[id].sum = newFuncSum()
		}
		for changed := true; changed; {
			changed = false
			for _, id := range scc {
				n := g.nodes[id]
				s := g.summarizeOne(n)
				if len(s.events) != len(n.sum.events) || len(s.tmpls) != len(n.sum.tmpls) {
					changed = true
				}
				n.sum = s
			}
			if len(scc) == 1 && !g.selfCall(scc[0]) {
				break // no recursion: one pass is the fixed point
			}
		}
	}
}

func (g *callGraph) selfCall(id int) bool {
	for _, edges := range g.nodes[id].callees {
		for _, w := range edges {
			if w == id {
				return true
			}
		}
	}
	return false
}

// summarizeOne merges a node's local events/templates with its
// callees' summaries, interleaved in call-site position order so the
// summary preserves acquisition order.
func (g *callGraph) summarizeOne(n *cgNode) *funcSum {
	s := newFuncSum()
	f := n.facts
	spliceAt := func(ci int, c callSite) {
		for _, calleeID := range n.callees[ci] {
			callee := g.nodes[calleeID]
			if callee.sum == nil || opensTxn(callee.facts) {
				continue // in-progress SCC round, or a txn boundary
			}
			disp := g.display(n, callee)
			for _, se := range callee.sum.events {
				s.addEvent(sumEvent{
					kind: se.kind, file: se.file, line: se.line,
					uncond: se.uncond && !c.inCond,
					entTab: se.entTab, col: se.col,
					path: prepend(disp, se.path),
				})
			}
			for _, st := range callee.sum.tmpls {
				s.addTmpl(sumTmpl{
					kind: st.kind, file: st.file, line: st.line,
					sql: st.sql, table: st.table, col: st.col,
					path: prepend(disp, st.path),
				})
			}
		}
	}
	ei, ci := 0, 0
	for ei < len(f.events) || ci < len(f.calls) {
		if ci >= len(f.calls) || (ei < len(f.events) && f.events[ei].pos <= f.calls[ci].pos) {
			ev := f.events[ei]
			s.addEvent(sumEvent{
				kind: ev.kind, file: f.file, line: ev.line,
				uncond: ev.uncond, entTab: ev.entTab, col: ev.col,
			})
			ei++
			continue
		}
		spliceAt(ci, f.calls[ci])
		ci++
	}
	ti, cj := 0, 0
	for ti < len(f.tmpls) || cj < len(f.calls) {
		if cj >= len(f.calls) || (ti < len(f.tmpls) && f.tmpls[ti].pos <= f.calls[cj].pos) {
			t := f.tmpls[ti]
			s.addTmpl(sumTmpl{
				kind: t.kind, file: f.file, line: t.line,
				sql: t.sql, table: t.table, col: t.col,
			})
			ti++
			continue
		}
		for _, calleeID := range n.callees[cj] {
			callee := g.nodes[calleeID]
			if callee.sum == nil || opensTxn(callee.facts) {
				continue
			}
			disp := g.display(n, callee)
			for _, st := range callee.sum.tmpls {
				s.addTmpl(sumTmpl{
					kind: st.kind, file: st.file, line: st.line,
					sql: st.sql, table: st.table, col: st.col,
					path: prepend(disp, st.path),
				})
			}
		}
		cj++
	}
	return s
}

// splice folds every resolved callee's summary back into the caller's
// facts as summary events/templates anchored at the call site. Dedup is
// scoped per leaf identity AND per call-site context (innermost loop
// body plus conditionality): a diamond — two call paths to one
// acquisition from the same context — and recursion (a function
// reaching its own events transitively) contribute each site once,
// while a callee invoked both before a loop and inside it keeps the
// in-loop occurrence, since that per-element acquisition is exactly
// what the unordered-locks check inspects. Seeding with the caller's
// own leaves keeps recursion from re-adding local events.
func (g *callGraph) splice() {
	for _, n := range g.nodes {
		f := n.facts
		seenEv := map[string]bool{}
		for _, ev := range f.events {
			seenEv[eventKey(ev.kind, f.file, ev.line, ev.entTab, ev.col)+spliceCtx(f, ev.pos)] = true
		}
		seenTm := map[string]bool{}
		for _, t := range f.tmpls {
			seenTm[tmplKey(t.kind, f.file, t.line, t.sql, t.table, t.col)+spliceCtx(f, t.pos)] = true
		}
		var addEv []event
		var addTm []tmpl
		for ci, c := range f.calls {
			ctx := spliceCtx(f, c.pos)
			for _, calleeID := range n.callees[ci] {
				callee := g.nodes[calleeID]
				if opensTxn(callee.facts) {
					continue
				}
				disp := g.display(n, callee)
				for _, se := range callee.sum.events {
					k := eventKey(se.kind, se.file, se.line, se.entTab, se.col) + ctx
					if seenEv[k] {
						continue
					}
					seenEv[k] = true
					addEv = append(addEv, event{
						kind: se.kind, pos: c.pos, line: c.line, summary: true,
						uncond: se.uncond && !c.inCond,
						entTab: se.entTab, col: se.col,
						leafFile: se.file, leafLine: se.line,
						path: prepend(disp, se.path),
					})
				}
				for _, st := range callee.sum.tmpls {
					k := tmplKey(st.kind, st.file, st.line, st.sql, st.table, st.col) + ctx
					if seenTm[k] {
						continue
					}
					seenTm[k] = true
					addTm = append(addTm, tmpl{
						kind: st.kind, pos: c.pos, line: st.line,
						sql: st.sql, table: st.table, col: st.col,
						file: st.file, path: prepend(disp, st.path),
					})
				}
			}
		}
		f.events = append(f.events, addEv...)
		sort.SliceStable(f.events, func(i, j int) bool { return f.events[i].pos < f.events[j].pos })
		f.tmpls = append(f.tmpls, addTm...)
		sort.SliceStable(f.tmpls, func(i, j int) bool { return f.tmpls[i].pos < f.tmpls[j].pos })
		finalizeSends(f)
	}
}

// spliceCtx renders the dedup context of one caller position: the
// innermost tracked loop body containing it (loops are appended in
// preorder, so the last containing entry is the innermost) and whether
// it sits inside any conditional/loop body at all. Two occurrences of
// the same leaf merge only when their sites share a context — what the
// downstream checks distinguish: unordered-locks asks "is there a lock
// event in THIS loop body", and a spliced event's conditionality is
// taken from its own site, not from whichever site happened first.
func spliceCtx(f *fnFacts, pos token.Pos) string {
	loop := -1
	for i, lp := range f.loops {
		if pos >= lp.body[0] && pos < lp.body[1] {
			loop = i
		}
	}
	cond := false
	for _, r := range f.conds {
		if pos >= r[0] && pos < r[1] {
			cond = true
			break
		}
	}
	return fmt.Sprintf("|L%d|C%t", loop, cond)
}

// opensTxn reports whether a function's body opens its own transaction
// (Begin or Transactional). A call to such a function is a transaction
// boundary: its statements run in the callee's transaction, so they
// never extend the caller's template or event stream — this is what
// keeps workload drivers that invoke handler APIs in sequence from
// looking like one phantom mega-transaction. Only local evBegin counts:
// boundary callees are never spliced, so the marker cannot propagate.
func opensTxn(f *fnFacts) bool {
	for _, ev := range f.events {
		if ev.kind == evBegin && !ev.summary {
			return true
		}
	}
	return false
}

// display names a callee from the caller's point of view:
// `drainKids`, `App.priceProducts`, or `dao.LockProduct` /
// `store.DBStore.Save` across packages.
func (g *callGraph) display(from, to *cgNode) string {
	name := to.name
	if to.isMeth && to.recvTyp != "" {
		name = to.recvTyp + "." + name
	}
	if to.pkg != from.pkg {
		name = to.pkg.name + "." + name
	}
	return name
}

func prepend(head string, tail []string) []string {
	out := make([]string, 0, len(tail)+1)
	out = append(out, head)
	return append(out, tail...)
}
