package staticlint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"weseer/internal/schema"
	"weseer/internal/sqlast"
)

// Analyzer 2's view of the session API: the method names through which
// the ORM reads, locks, buffers, and flushes. Query/Find/Exec/Lazy send
// statements (and take locks) at the call site; Set buffers a row
// modification until the flush.
var (
	readMethods = map[string]bool{"Query": true, "Find": true, "Lazy": true}
	lockMethods = map[string]bool{"Query": true, "Find": true, "Exec": true, "Lazy": true}
	sortFuncs   = map[string]bool{"Slice": true, "SliceStable": true, "Sort": true, "Ints": true, "Strings": true, "Float64s": true}
)

// sessionMethods are never resolved as package-local callees.
var sessionMethods = map[string]bool{
	"Query": true, "Find": true, "Lazy": true, "Exec": true, "Set": true,
	"Persist": true, "Merge": true, "Remove": true, "Flush": true,
	"NewEntity": true, "Begin": true, "Commit": true, "Rollback": true,
	"Transactional": true, "Lock": true, "Unlock": true,
}

// funcSummary is the one-level callee summary: does calling this
// package-local function read through the session, and does it take
// database or mutex locks?
type funcSummary struct {
	reads bool
	locks bool
}

// event is one interpreted action of a function body, in source order.
type eventKind uint8

const (
	evWrite  eventKind = iota // buffered Set on a pre-existing entity
	evRead                    // session read: Query/Find/Lazy or a reading callee
	evFlush                   // explicit Flush
	evLock                    // lock-taking op: Query/Find/Exec/Lazy/.Lock() or callee
	evBegin                   // txn boundary: Begin or Transactional entry
	evCommit                  // txn boundary: Commit or Transactional exit
)

type event struct {
	kind    eventKind
	pos     token.Pos
	line    int
	uncond  bool   // evFlush: not inside a conditional/loop body
	entTab  string // evWrite: entity's table, "" if unresolved
	col     string // evWrite: written column
	summary bool   // event inferred from a callee summary

	// Provenance for whole-program (callgraph) summaries: where the
	// event really happens and the call chain that reaches it.
	leafFile string
	leafLine int
	path     []string // e.g. ["priceProducts", "dao.LockProduct"]
}

// Template fragments extracted for Analyzer 1. Finds and Sets need the
// schema (primary-key column) to materialize, so they stay symbolic
// until Shapes.
type tmplKind uint8

const (
	tmplSQL  tmplKind = iota // literal SQL passed to Query/Exec
	tmplFind                 // Find(table, id): primary-key point SELECT
	tmplSet                  // Set on existing entity: buffered UPDATE
)

type tmpl struct {
	kind       tmplKind
	pos        token.Pos // trigger site
	sentPos    token.Pos // send site: pos, the next Flush, or commit (last)
	line       int
	sql        string // tmplSQL
	table, col string // tmplFind / tmplSet
	slid       bool   // tmplSet: a session read follows the trigger, pre-flush

	// Set for templates inlined from a callee summary: the file the
	// template really lives in (line above is then the leaf line too)
	// and the call chain that reaches it.
	file string
	path []string
}

// callSite is an unresolved non-session call recorded during
// interpretation when the scan runs in whole-program mode; the call
// graph layer resolves it with go/types and splices the callee's
// transitive summary back in at pos.
type callSite struct {
	call     *ast.CallExpr
	pos      token.Pos
	line     int
	name     string
	isMethod bool
	inCond   bool // site is inside a conditional/loop body
}

type loopInfo struct {
	pos       token.Pos
	line      int
	body      [2]token.Pos
	rangedVar string // ident ranged over, "" for non-ident expressions
	rangeExpr string // printable form for the finding detail
}

type ifInfo struct {
	pos      token.Pos
	line     int
	emptyVar string // Cond is len(emptyVar) == 0
	body     [2]token.Pos
}

// fnFacts is everything the detectors and the template extraction need
// about one function, produced by a single in-order interpretation.
type fnFacts struct {
	name     string
	file     string
	events   []event
	tmpls    []tmpl
	loops    []loopInfo
	ifs      []ifInfo
	conds    [][2]token.Pos // every conditional/loop body range, preorder
	merges   []event        // Merge call sites
	persists []event        // Persist call sites
	queried  map[string]bool
	calls    []callSite // deferred non-session calls (whole-program mode)
}

type pkgScan struct {
	fset  *token.FileSet
	dir   string
	decls []*ast.FuncDecl
	sums  map[string]funcSummary
	recvs map[string]string // func name -> declared receiver ident ("" = unnamed or plain func)
	meths map[string]bool   // func name -> declared with a receiver
	facts []*fnFacts

	// deferCalls switches interpret from one-level heuristic callee
	// resolution to recording callSites for the call-graph layer.
	deferCalls bool

	// resolved records, per "file:line" call site, the display names of
	// the callees the active resolver bound it to (both resolvers fill
	// it; the precision-delta test diffs the two).
	resolved map[string][]string
}

// scanDir parses every non-test .go file in dir (stdlib go/parser only)
// and interprets each function.
func scanDir(dir string) (*pkgScan, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	p := newPkgScan(token.NewFileSet(), dir)
	for _, ent := range ents {
		name := ent.Name()
		if ent.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		path := filepath.Join(dir, name)
		f, err := parser.ParseFile(p.fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("staticlint: %w", err)
		}
		for _, d := range f.Decls {
			// Declarations named like session methods are the ORM
			// surface itself (or an app's local stand-in for it), not
			// app transaction APIs: their bodies are never interpreted
			// and calls to them become events at the call site.
			// parseTarget applies the same rule, so both resolution
			// modes see the same declaration set.
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil && !sessionMethods[fd.Name.Name] {
				p.decls = append(p.decls, fd)
			}
		}
	}
	sort.Slice(p.decls, func(i, j int) bool { return p.decls[i].Pos() < p.decls[j].Pos() })
	for _, fd := range p.decls {
		name := fd.Name.Name
		p.recvs[name] = recvIdent(fd)
		p.meths[name] = fd.Recv != nil
		sum := funcSummary{}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if m, ok := methodName(call); ok {
				sum.reads = sum.reads || readMethods[m]
				sum.locks = sum.locks || lockMethods[m] || m == "Lock"
			}
			return true
		})
		p.sums[name] = sum
	}
	for _, fd := range p.decls {
		p.facts = append(p.facts, p.interpret(fd))
	}
	return p, nil
}

func newPkgScan(fset *token.FileSet, dir string) *pkgScan {
	return &pkgScan{
		fset: fset, dir: dir,
		sums:     map[string]funcSummary{},
		recvs:    map[string]string{},
		meths:    map[string]bool{},
		resolved: map[string][]string{},
	}
}

// recvIdent returns the first receiver ident of a method declaration.
// Unnamed receivers (`func (Foo) M()`) and — illegal but parseable —
// multi-name receiver lists (`func (a, b Foo) M()`) used to be dropped
// entirely, hiding those bodies from summary resolution; now the
// receiver list contributes its first name and "" only means the
// receiver is genuinely unnamed (pkgScan.meths still records that the
// declaration is a method).
func recvIdent(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return ""
	}
	names := fd.Recv.List[0].Names
	if len(names) == 0 {
		return ""
	}
	return names[0].Name
}

// recvTypeName returns the bare receiver type name (`Foo` for `*Foo`,
// `Foo`, or `Foo[T]`), used for display names in provenance chains.
func recvTypeName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return ""
	}
	t := fd.Recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.IndexExpr:
			t = x.X
		case *ast.IndexListExpr:
			t = x.X
		case *ast.Ident:
			return x.Name
		default:
			return ""
		}
	}
}

// methodName returns the selector method name of a call (`x.M(...)`).
func methodName(call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	return sel.Sel.Name, true
}

func identName(e ast.Expr) string {
	if id, ok := e.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

func strLit(e ast.Expr) (string, bool) {
	lit, ok := e.(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return "", false
	}
	s, err := strconv.Unquote(lit.Value)
	return s, err == nil
}

func looksLikeSQL(s string) bool {
	up := strings.ToUpper(strings.TrimSpace(s))
	for _, kw := range []string{"SELECT ", "INSERT ", "UPDATE ", "DELETE "} {
		if strings.HasPrefix(up, kw) {
			return true
		}
	}
	return false
}

// interpret runs the single in-source-order pass over one function body,
// tracking entity origins (NewEntity / Find / Query rows) and recording
// events, template fragments, loops, and branch shapes.
func (p *pkgScan) interpret(fd *ast.FuncDecl) *fnFacts {
	pos := p.fset.Position(fd.Pos())
	facts := &fnFacts{name: fd.Name.Name, file: filepath.ToSlash(pos.Filename), queried: map[string]bool{}}

	// Collection pass: gather nodes, then process calls in source order.
	type copyAct struct {
		pos token.Pos
		lhs string
		rhs ast.Expr
	}
	var copies []copyAct
	var calls []*ast.CallExpr
	binds := map[*ast.CallExpr][]string{} // call -> LHS idents
	var condRanges [][2]token.Pos
	sorted := map[string]bool{}
	rangeBind := map[string]string{} // range value ident -> source collection ident
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.CallExpr:
			calls = append(calls, s)
		case *ast.AssignStmt:
			if len(s.Rhs) == 1 {
				if call, ok := s.Rhs[0].(*ast.CallExpr); ok {
					for _, l := range s.Lhs {
						if name := identName(l); name != "" && name != "_" {
							binds[call] = append(binds[call], name)
						}
					}
				} else if len(s.Lhs) == 1 {
					if name := identName(s.Lhs[0]); name != "" && name != "_" {
						copies = append(copies, copyAct{pos: s.Pos(), lhs: name, rhs: s.Rhs[0]})
					}
				}
			}
		case *ast.IfStmt:
			condRanges = append(condRanges, [2]token.Pos{s.Body.Pos(), s.Body.End()})
			if s.Else != nil {
				condRanges = append(condRanges, [2]token.Pos{s.Else.Pos(), s.Else.End()})
			}
			if v, ok := lenIsZero(s.Cond); ok {
				facts.ifs = append(facts.ifs, ifInfo{
					pos: s.Pos(), line: p.fset.Position(s.Pos()).Line,
					emptyVar: v, body: [2]token.Pos{s.Body.Pos(), s.Body.End()},
				})
			}
		case *ast.ForStmt:
			condRanges = append(condRanges, [2]token.Pos{s.Body.Pos(), s.Body.End()})
		case *ast.RangeStmt:
			condRanges = append(condRanges, [2]token.Pos{s.Body.Pos(), s.Body.End()})
			li := loopInfo{
				pos: s.Pos(), line: p.fset.Position(s.Pos()).Line,
				body:      [2]token.Pos{s.Body.Pos(), s.Body.End()},
				rangedVar: identName(s.X),
				rangeExpr: exprString(s.X),
			}
			facts.loops = append(facts.loops, li)
			if v := identName(s.Value); v != "" && li.rangedVar != "" {
				rangeBind[v] = li.rangedVar
			}
		case *ast.CaseClause:
			if len(s.Body) > 0 {
				condRanges = append(condRanges, [2]token.Pos{s.Body[0].Pos(), s.Body[len(s.Body)-1].End()})
			}
		}
		return true
	})
	sort.Slice(calls, func(i, j int) bool { return calls[i].Pos() < calls[j].Pos() })
	facts.conds = condRanges // retained: splice scopes its dedup per context
	inCond := func(at token.Pos) bool {
		for _, r := range condRanges {
			if at >= r[0] && at < r[1] {
				return true
			}
		}
		return false
	}

	newEnts := map[string]bool{}       // idents created by NewEntity here
	entityTable := map[string]string{} // entity ident -> table
	queryVar := map[string]string{}    // query-result slice ident -> table

	resolveEntity := func(e ast.Expr) (table string, isNew bool, known bool) {
		switch x := e.(type) {
		case *ast.Ident:
			if newEnts[x.Name] {
				return entityTable[x.Name], true, true
			}
			if t, ok := entityTable[x.Name]; ok {
				return t, false, true
			}
			if src, ok := rangeBind[x.Name]; ok {
				if t, ok := queryVar[src]; ok {
					return t, false, true
				}
			}
		case *ast.IndexExpr:
			if base := identName(x.X); base != "" {
				if t, ok := queryVar[base]; ok {
					return t, false, true
				}
			}
		}
		return "", false, false
	}

	// applyCopies propagates entity/result-set origins through plain
	// `x := y` / `x := rows[i]` assignments, in source order.
	sort.Slice(copies, func(i, j int) bool { return copies[i].pos < copies[j].pos })
	applyCopies := func(upTo token.Pos) {
		for len(copies) > 0 && copies[0].pos <= upTo {
			c := copies[0]
			copies = copies[1:]
			switch r := c.rhs.(type) {
			case *ast.Ident:
				if t, ok := entityTable[r.Name]; ok {
					entityTable[c.lhs] = t
					if newEnts[r.Name] {
						newEnts[c.lhs] = true
					} else {
						delete(newEnts, c.lhs)
					}
				} else if src, ok := rangeBind[r.Name]; ok {
					if t := queryVar[src]; t != "" {
						entityTable[c.lhs] = t
						delete(newEnts, c.lhs)
					}
				} else if t, ok := queryVar[r.Name]; ok {
					queryVar[c.lhs] = t
				}
			case *ast.IndexExpr:
				if base := identName(r.X); base != "" {
					if t, ok := queryVar[base]; ok && t != "" {
						entityTable[c.lhs] = t
						delete(newEnts, c.lhs)
					}
				}
			}
		}
	}

	addEvent := func(e event) { facts.events = append(facts.events, e) }

	for _, call := range calls {
		at := call.Pos()
		applyCopies(at)
		line := p.fset.Position(at).Line
		// sort.<Fn>(x, ...) marks x as ordered.
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			if identName(sel.X) == "sort" && sortFuncs[sel.Sel.Name] && len(call.Args) > 0 {
				if v := identName(call.Args[0]); v != "" {
					sorted[v] = true
				}
				continue
			}
		}
		m, isMethod := methodName(call)
		if !isMethod {
			m = identName(call.Fun)
		}
		switch {
		case m == "NewEntity" && isMethod:
			for _, lhs := range binds[call] {
				newEnts[lhs] = true
				if len(call.Args) > 0 {
					if t, ok := strLit(call.Args[0]); ok {
						entityTable[lhs] = t
					}
				}
			}
		case m == "Find" && isMethod:
			tab := ""
			if len(call.Args) > 0 {
				tab, _ = strLit(call.Args[0])
			}
			for _, lhs := range binds[call] {
				delete(newEnts, lhs)
				if tab != "" {
					entityTable[lhs] = tab
				}
			}
			if tab != "" {
				facts.tmpls = append(facts.tmpls, tmpl{kind: tmplFind, pos: at, line: line, table: tab})
			}
			addEvent(event{kind: evRead, pos: at, line: line})
			addEvent(event{kind: evLock, pos: at, line: line})
		case m == "Query" && isMethod:
			tab := ""
			if len(call.Args) > 0 {
				if sql, ok := strLit(call.Args[0]); ok && looksLikeSQL(sql) {
					facts.tmpls = append(facts.tmpls, tmpl{kind: tmplSQL, pos: at, line: line, sql: sql})
					target := ""
					if len(call.Args) >= 3 {
						target, _ = strLit(call.Args[2])
					}
					tab = aliasTable(sql, target)
				}
			}
			for _, lhs := range binds[call] {
				queryVar[lhs] = tab
				facts.queried[lhs] = true
			}
			addEvent(event{kind: evRead, pos: at, line: line})
			addEvent(event{kind: evLock, pos: at, line: line})
		case m == "Lazy" && isMethod:
			addEvent(event{kind: evRead, pos: at, line: line})
			addEvent(event{kind: evLock, pos: at, line: line})
		case m == "Exec" && isMethod:
			if len(call.Args) > 0 {
				if sql, ok := strLit(call.Args[0]); ok && looksLikeSQL(sql) {
					facts.tmpls = append(facts.tmpls, tmpl{kind: tmplSQL, pos: at, line: line, sql: sql})
				}
			}
			addEvent(event{kind: evLock, pos: at, line: line})
		case m == "Set" && isMethod && len(call.Args) >= 2:
			tab, isNew, known := resolveEntity(call.Args[0])
			if isNew {
				break // building a new row: its lock is the Persist INSERT's
			}
			col, _ := strLit(call.Args[1])
			ev := event{kind: evWrite, pos: at, line: line, col: col}
			if known {
				ev.entTab = tab
			}
			addEvent(ev)
			if known && tab != "" && col != "" {
				facts.tmpls = append(facts.tmpls, tmpl{kind: tmplSet, pos: at, line: line, table: tab, col: col})
			}
		case m == "Persist" && isMethod:
			facts.persists = append(facts.persists, event{pos: at, line: line})
		case m == "Merge" && isMethod:
			facts.merges = append(facts.merges, event{pos: at, line: line})
			addEvent(event{kind: evRead, pos: at, line: line})
			addEvent(event{kind: evLock, pos: at, line: line})
		case m == "Flush" && isMethod:
			addEvent(event{kind: evFlush, pos: at, line: line, uncond: !inCond(at)})
		case m == "Lock":
			addEvent(event{kind: evLock, pos: at, line: line})
		case m == "Transactional" && isMethod:
			// The closure body is interpreted inline (ast.Inspect walks
			// it); the boundary events bracket everything inside.
			addEvent(event{kind: evBegin, pos: at, line: line})
			addEvent(event{kind: evCommit, pos: call.End(), line: p.fset.Position(call.End()).Line})
		case m == "Begin" && isMethod:
			addEvent(event{kind: evBegin, pos: at, line: line})
		case m == "Commit" && isMethod:
			addEvent(event{kind: evCommit, pos: at, line: line})
		case m != "" && !sessionMethods[m]:
			if p.deferCalls {
				// Whole-program mode: the call-graph layer resolves the
				// callee with go/types and splices its transitive
				// summary in at this position.
				facts.calls = append(facts.calls, callSite{
					call: call, pos: at, line: line, name: m,
					isMethod: isMethod, inCond: inCond(at),
				})
				break
			}
			// One-level callee summary (the -callgraph=false ablation
			// path). A method call only resolves to a package-local
			// method when the call's receiver ident matches the declared
			// receiver name (a cheap stand-in for go/types: it separates
			// `a.priceCart(...)` from `e.Add(...)`); a plain call only
			// resolves to a plain function.
			sum, ok := p.sums[m]
			if ok && isMethod {
				sel := call.Fun.(*ast.SelectorExpr)
				ok = p.meths[m] && p.recvs[m] != "" && identName(sel.X) == p.recvs[m]
			} else if ok {
				ok = !p.meths[m]
			}
			if ok {
				key := fmt.Sprintf("%s:%d", facts.file, line)
				p.resolved[key] = append(p.resolved[key], m)
				if sum.reads {
					addEvent(event{kind: evRead, pos: at, line: line, summary: true, path: []string{m}})
				}
				if sum.locks {
					addEvent(event{kind: evLock, pos: at, line: line, summary: true, path: []string{m}})
				}
			}
		}
	}

	// Transactional's evCommit lands at the call's End, after the
	// closure body's events; restore global position order (stable, so
	// same-position events keep their emission order).
	sort.SliceStable(facts.events, func(i, j int) bool { return facts.events[i].pos < facts.events[j].pos })
	if !p.deferCalls {
		finalizeSends(facts)
	}
	facts.loopsSuppress(sorted)
	return facts
}

// finalizeSends computes each template's send position and slid flag
// from the completed event stream. A buffered Set "slides" when a
// session read follows its trigger site (directly, or around the loop
// it sits in) with no unconditional Flush in between; a Flush also
// re-anchors the statement's send position from commit back to the
// flush site. In whole-program mode this runs only after callee
// summaries are spliced in, so inlined reads and flushes participate in
// the reorder decision.
func finalizeSends(facts *fnFacts) {
	var flushes []token.Pos
	for _, ev := range facts.events {
		if ev.kind == evFlush && ev.uncond {
			flushes = append(flushes, ev.pos)
		}
	}
	nextFlush := func(after token.Pos) (token.Pos, bool) {
		for _, f := range flushes {
			if f > after {
				return f, true
			}
		}
		return 0, false
	}
	for i := range facts.tmpls {
		t := &facts.tmpls[i]
		t.sentPos = t.pos
		if t.kind != tmplSet {
			continue
		}
		fl, flushed := nextFlush(t.pos)
		if flushed {
			t.sentPos = fl
		} else {
			t.sentPos = token.Pos(1 << 30) // commit: after every sent statement
		}
		for _, ev := range facts.events {
			if ev.kind == evRead && ev.pos > t.pos && (!flushed || ev.pos < fl) {
				t.slid = true
			}
		}
		if !t.slid && !flushed {
			for _, lp := range facts.loops {
				if t.pos < lp.body[0] || t.pos >= lp.body[1] {
					continue
				}
				for _, ev := range facts.events {
					if ev.kind == evRead && ev.pos >= lp.body[0] && ev.pos < lp.body[1] {
						t.slid = true
					}
				}
			}
		}
	}
	sort.SliceStable(facts.tmpls, func(i, j int) bool { return facts.tmpls[i].sentPos < facts.tmpls[j].sentPos })
}

// loopsSuppress drops loops whose ranged collection was explicitly
// sorted earlier in the function — provably ordered acquisition.
func (f *fnFacts) loopsSuppress(sorted map[string]bool) {
	kept := f.loops[:0]
	for _, lp := range f.loops {
		if lp.rangedVar != "" && sorted[lp.rangedVar] {
			continue
		}
		kept = append(kept, lp)
	}
	f.loops = kept
}

// lenIsZero matches `len(x) == 0`.
func lenIsZero(cond ast.Expr) (string, bool) {
	bin, ok := cond.(*ast.BinaryExpr)
	if !ok || bin.Op != token.EQL {
		return "", false
	}
	call, ok := bin.X.(*ast.CallExpr)
	if !ok || identName(call.Fun) != "len" || len(call.Args) != 1 {
		return "", false
	}
	lit, ok := bin.Y.(*ast.BasicLit)
	if !ok || lit.Kind != token.INT || lit.Value != "0" {
		return "", false
	}
	return identName(call.Args[0]), true
}

// aliasTable resolves which table the query's target alias selects.
func aliasTable(sql, target string) string {
	st, err := sqlast.Parse(sql)
	if err != nil {
		return ""
	}
	aliases := sqlast.AliasMapOf(st)
	if t, ok := aliases[target]; ok {
		return t
	}
	if tabs := st.Tables(); len(tabs) == 1 {
		return tabs[0]
	}
	return ""
}

func exprString(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.CallExpr:
		if m, ok := methodName(x); ok {
			return m + "(...)"
		}
		if n := identName(x.Fun); n != "" {
			return n + "(...)"
		}
	case *ast.SelectorExpr:
		return exprString(x.X) + "." + x.Sel.Name
	}
	return "expression"
}

// Shapes materializes each function's extracted statement templates as a
// TxnShape for Analyzer 1, in send order: statements sent at their call
// sites first, then the buffered updates the flush emits at commit.
// Buffered updates are marked Deferred only when a read genuinely
// follows their trigger site (the d5/d6 reorder). scm, when present,
// supplies primary-key columns for Find and Set synthesis.
func (p *pkgScan) Shapes(scm *schema.Schema) []TxnShape {
	var out []TxnShape
	for _, f := range p.facts {
		sh := TxnShape{API: f.name}
		for _, t := range f.tmpls { // already in send order (sentPos)
			// Templates inlined from a callee summary carry the leaf
			// file, so lock-graph votes cite the real acquisition site
			// (under the caller's API name).
			file := t.file
			if file == "" {
				file = f.file
			}
			switch t.kind {
			case tmplSQL:
				st, err := sqlast.Parse(t.sql)
				if err != nil {
					continue
				}
				sh.Stmts = append(sh.Stmts, StmtShape{Stmt: st, File: file, Line: t.line})
			case tmplFind:
				if sql, ok := pointSelect(scm, t.table); ok {
					sh.Stmts = append(sh.Stmts, StmtShape{Stmt: sqlast.MustParse(sql), File: file, Line: t.line})
				}
			case tmplSet:
				if sql, ok := bufferedUpdate(scm, t.table, t.col); ok {
					sh.Stmts = append(sh.Stmts, StmtShape{
						Stmt: sqlast.MustParse(sql), Deferred: t.slid, File: file, Line: t.line,
					})
				}
			}
		}
		if len(sh.Stmts) > 0 {
			out = append(out, sh)
		}
	}
	return out
}

func pkColumn(scm *schema.Schema, table string) (string, bool) {
	if scm == nil {
		return "", false
	}
	t := scm.Table(table)
	if t == nil {
		return "", false
	}
	pk := t.PrimaryIndex()
	if pk == nil || len(pk.Columns) != 1 {
		return "", false
	}
	return pk.Columns[0], true
}

func pointSelect(scm *schema.Schema, table string) (string, bool) {
	pk, ok := pkColumn(scm, table)
	if !ok {
		return "", false
	}
	return fmt.Sprintf("SELECT * FROM %s t WHERE t.%s = ?", table, pk), true
}

func bufferedUpdate(scm *schema.Schema, table, col string) (string, bool) {
	if pk, ok := pkColumn(scm, table); ok {
		if pk == col {
			return "", false // key rewrite, not the buffered-counter shape
		}
		return fmt.Sprintf("UPDATE %s SET %s = ? WHERE %s = ?", table, col, pk), true
	}
	return fmt.Sprintf("UPDATE %s SET %s = ?", table, col), true
}
