package staticlint

import (
	"fmt"
	"sort"

	"weseer/internal/lockmodel"
	"weseer/internal/schema"
	"weseer/internal/smt"
	"weseer/internal/sqlast"
)

// Analyzer 1: the template-level pre-screen. It re-derives each
// statement's modeled locks (Alg. 2, via lockmodel) and refines the
// index-collision test with row-key reasoning: a ROW lock on a unique
// index whose every column is pinned to a rigid value protects exactly
// one row, so two such locks with different keys can never collide —
// no input assignment moves them. Everything it cannot pin stays
// conservatively "possible", which keeps the screen sound with respect
// to the SMT phase: a cycle the solver could confirm is never refuted.

// pointKeyOn returns the canonical key a statement pins on every column
// of the unique index ix (for the lock acquired under alias), and false
// when any column is unpinned or not statically fixed.
func pointKeyOn(sh StmtShape, alias string, ix *schema.Index) (string, bool) {
	if ix == nil || !ix.Unique {
		return "", false
	}
	if ins, ok := insertOf(sh.Stmt); ok {
		key := ""
		for _, col := range ix.Columns {
			op, ok := ins.ValueOf(col)
			if !ok {
				return "", false
			}
			k, ok := rigidOperand(op, sh)
			if !ok {
				return "", false
			}
			key += k + "|"
		}
		return key, true
	}
	preds := sqlast.QueryCondOf(sh.Stmt).Preds
	key := ""
	for _, col := range ix.Columns {
		k, ok := pinnedValue(preds, alias, col, sh)
		if !ok {
			return "", false
		}
		key += k + "|"
	}
	return key, true
}

func insertOf(st sqlast.Stmt) (*sqlast.Insert, bool) {
	switch s := st.(type) {
	case *sqlast.Insert:
		return s, true
	case *sqlast.Upsert:
		return &s.Insert, true
	}
	return nil, false
}

// pinnedValue finds a top-level equality conjunct binding alias.col to a
// rigid value. Conjuncts are sound pins: every row the statement touches
// satisfies them.
func pinnedValue(preds []sqlast.Pred, alias, col string, sh StmtShape) (string, bool) {
	for _, p := range preds {
		if p.IsNull || p.Op != smt.EQ {
			continue
		}
		colSide, valSide := p.L, p.R
		if !isColRef(colSide, alias, col) {
			colSide, valSide = p.R, p.L
		}
		if !isColRef(colSide, alias, col) {
			continue
		}
		if k, ok := rigidOperand(valSide, sh); ok {
			return k, true
		}
	}
	return "", false
}

func isColRef(o sqlast.Operand, alias, col string) bool {
	return o.Kind == sqlast.Col && o.Column == col && (o.Table == alias || o.Table == "")
}

// readLockUnion models the locks the reader side holds on the table,
// covering both emptiness cases when the template doesn't know.
func readLockUnion(sh StmtShape, scm *schema.Schema, table string) []lockmodel.Lock {
	if sh.Stmt.WriteTable() == table {
		return lockmodel.GenExclusiveLocks(sh.Stmt, scm, table)
	}
	switch sh.Empty {
	case EmptyYes:
		return lockmodel.GenSharedLocks(sh.Stmt, scm, table, true)
	case EmptyNo:
		return lockmodel.GenSharedLocks(sh.Stmt, scm, table, false)
	}
	locks := lockmodel.GenSharedLocks(sh.Stmt, scm, table, false)
	return append(locks, lockmodel.GenSharedLocks(sh.Stmt, scm, table, true)...)
}

// EdgePossible reports whether two statements can truly hold conflicting
// locks — the refined C-edge test. It mirrors the fine phase's
// PotentialConflict (both write orientations, index-level collision)
// and additionally refutes ROW/ROW collisions on a unique index whose
// rigid point keys differ.
func EdgePossible(a, b StmtShape, scm *schema.Schema) bool {
	for _, o := range [2][2]StmtShape{{a, b}, {b, a}} {
		w, r := o[0], o[1]
		tab := w.Stmt.WriteTable()
		if tab == "" {
			continue
		}
		accessed := false
		for _, t := range r.Stmt.Tables() {
			if t == tab {
				accessed = true
				break
			}
		}
		if !accessed {
			continue
		}
		wl := lockmodel.GenExclusiveLocks(w.Stmt, scm, tab)
		rl := readLockUnion(r, scm, tab)
		if lockSetsCollide(w, wl, r, rl) {
			return true
		}
	}
	return false
}

// lockSetsCollide is lockmodel.Conflicting refined with point-key
// disjointness: a ROW/ROW pair on the same unique index is discounted
// when both sides pin the full key to different rigid values.
func lockSetsCollide(w StmtShape, wl []lockmodel.Lock, r StmtShape, rl []lockmodel.Lock) bool {
	for _, la := range wl {
		for _, lb := range rl {
			if !la.Exclusive && !lb.Exclusive {
				continue
			}
			if la.Table != lb.Table {
				continue
			}
			if la.Gran == lockmodel.TableLock || lb.Gran == lockmodel.TableLock {
				return true
			}
			if la.Index == nil || lb.Index == nil || la.Index.Name != lb.Index.Name {
				if la.Index == nil || lb.Index == nil {
					return true // unmodeled index: stay conservative
				}
				continue
			}
			if la.Gran == lockmodel.Row && lb.Gran == lockmodel.Row && la.Index.Unique {
				ka, oka := pointKeyOn(w, la.Alias, la.Index)
				kb, okb := pointKeyOn(r, lb.Alias, lb.Index)
				if oka && okb && ka != kb {
					continue // two single-row locks on provably different rows
				}
			}
			return true
		}
	}
	return false
}

// CyclePossible applies the refined edge test to one SC-graph deadlock
// cycle: T1 holds at s1a and waits at s1b, T2 holds at s2a and waits at
// s2b, with C-edges (s1b, s2a) and (s2b, s1a).
func CyclePossible(s1a, s1b, s2a, s2b StmtShape, scm *schema.Schema) bool {
	return EdgePossible(s1b, s2a, scm) && EdgePossible(s2b, s1a, scm)
}

// PairDeadlockPossible reports whether any hold-and-wait cycle between
// the two transaction shapes survives the static screen — the Phase-0
// pair filter. A deadlock needs edges (i1b, i2a) and (i1a, i2b) with
// i1a < i1b and i2a < i2b.
func PairDeadlockPossible(t1, t2 TxnShape, scm *schema.Schema) bool {
	n1, n2 := len(t1.Stmts), len(t2.Stmts)
	type edge struct{ i, j int }
	var edges []edge
	for i := 0; i < n1; i++ {
		for j := 0; j < n2; j++ {
			if EdgePossible(t1.Stmts[i], t2.Stmts[j], scm) {
				edges = append(edges, edge{i, j})
			}
		}
	}
	// maxJBelow[i]: the largest j among edges whose first endpoint is
	// strictly below i — a candidate (i1a, i2b) for a cycle closing at
	// (i1b, i2a) = (i, j) needs i1a < i and i2b > j.
	maxJBelow := make([]int, n1+1)
	for i := range maxJBelow {
		maxJBelow[i] = -1
	}
	for _, e := range edges {
		for i := e.i + 1; i <= n1; i++ {
			if maxJBelow[i] < e.j {
				maxJBelow[i] = e.j
			}
		}
	}
	for _, e := range edges {
		if maxJBelow[e.i] > e.j {
			return true
		}
	}
	return false
}

// ---------------------------------------------------------------------------
// Template-level hazard findings

// tableAccess summarizes one statement's role for the order analysis.
type tableAccess struct {
	pos   int
	table string
	write bool
}

func accessesOf(sh TxnShape) []tableAccess {
	var out []tableAccess
	for i, st := range sh.Stmts {
		wt := st.Stmt.WriteTable()
		for _, t := range st.Stmt.Tables() {
			out = append(out, tableAccess{pos: i, table: t, write: t == wt})
		}
	}
	return out
}

// PrescreenTxns runs Analyzer 1's hazard checks over transaction shapes
// and reports template-level findings: read-then-write lock upgrades,
// cross-transaction write-order inversions, deferred writes flushed past
// reads (d5/d6 class), and gap/next-key escalation on predicates no
// index covers. scm may be nil, which disables the escalation check.
func PrescreenTxns(shapes []TxnShape, scm *schema.Schema) []Finding {
	var out []Finding
	for _, sh := range shapes {
		out = append(out, upgradeFindings(sh)...)
		out = append(out, flushReorderFindings(sh)...)
		if scm != nil {
			out = append(out, gapEscalationFindings(sh, scm)...)
		}
	}
	// The cross-API canonical order lets each inversion cite the global
	// reorder that fixes its whole family instead of a bare pair report.
	co := CanonicalizeShapes(shapes, scm)
	for i := range shapes {
		for j := i + 1; j < len(shapes); j++ {
			out = append(out, inversionFindings(shapes[i], shapes[j], co)...)
		}
	}
	Sort(out)
	return out
}

// upgradeFindings flags read-then-write on the same table within one
// transaction: two concurrent instances S-lock the row, then both block
// upgrading to X — the d2/d14 shape.
func upgradeFindings(sh TxnShape) []Finding {
	firstRead := map[string]int{}
	seen := map[string]bool{}
	var out []Finding
	for _, a := range accessesOf(sh) {
		if !a.write {
			if _, ok := firstRead[a.table]; !ok {
				firstRead[a.table] = a.pos
			}
			continue
		}
		ri, ok := firstRead[a.table]
		if !ok || ri >= a.pos || seen[a.table] {
			continue
		}
		seen[a.table] = true
		st := sh.Stmts[a.pos]
		out = append(out, Finding{
			Analyzer: "prescreen", Kind: KindLockOrderInversion, Severity: SevWarn,
			File: st.File, Line: st.Line, Func: sh.API, Table: a.table,
			Detail: fmt.Sprintf("shared lock from stmt %d is upgraded by the write at stmt %d; two concurrent %s transactions can upgrade-deadlock", ri, a.pos, sh.API),
		})
	}
	return out
}

// inversionFindings flags opposite write orders between two transaction
// shapes: t1 writes A before B while t2 writes B before A. When the
// cross-API canonical order resolves the pair, the finding cites the
// ranked reorder suggestion instead of leaving a bare inversion.
func inversionFindings(t1, t2 TxnShape, co *CanonicalOrder) []Finding {
	order := func(sh TxnShape) map[string]int {
		m := map[string]int{}
		for _, a := range accessesOf(sh) {
			if a.write {
				if _, ok := m[a.table]; !ok {
					m[a.table] = a.pos
				}
			}
		}
		return m
	}
	o1, o2 := order(t1), order(t2)
	tables1 := make([]string, 0, len(o1))
	for t := range o1 {
		tables1 = append(tables1, t)
	}
	sort.Strings(tables1)
	var out []Finding
	for _, ta := range tables1 {
		for _, tb := range tables1 {
			p1a, p1b := o1[ta], o1[tb]
			if ta >= tb || p1a >= p1b {
				continue
			}
			p2a, ok1 := o2[ta]
			p2b, ok2 := o2[tb]
			if !ok1 || !ok2 || p2b >= p2a {
				continue
			}
			st := t1.Stmts[p1b]
			detail := fmt.Sprintf("%s writes %s before %s but %s writes them in the opposite order", t1.API, ta, tb, t2.API)
			na := OrderNode{Table: ta}.Key()
			nb := OrderNode{Table: tb}.Key()
			if s := co.SuggestionFor(na, nb); s != nil {
				detail += fmt.Sprintf("; canonical order acquires %s before %s (reorder suggestion #%d)", s.To, s.From, s.Rank)
			}
			out = append(out, Finding{
				Analyzer: "prescreen", Kind: KindLockOrderInversion, Severity: SevWarn,
				File: st.File, Line: st.Line, Func: t1.API + "/" + t2.API, Table: ta + "," + tb,
				Detail: detail,
			})
		}
	}
	return out
}

// flushReorderFindings flags the d5/d6 class: a write-behind statement
// whose flush slid past reads issued after its trigger site, so the
// transaction's lock order no longer matches the modification order.
func flushReorderFindings(sh TxnShape) []Finding {
	var out []Finding
	for i, st := range sh.Stmts {
		if !st.Deferred || st.Stmt.WriteTable() == "" {
			continue
		}
		if _, ok := insertOf(st.Stmt); ok {
			continue // a deferred INSERT locks a fresh row; d5/d6 needs an UPDATE
		}
		slid := false
		for j := 0; j < i; j++ {
			if r := sh.Stmts[j]; !r.Deferred && r.Stmt.WriteTable() == "" {
				slid = true
				break
			}
		}
		if !slid {
			continue
		}
		out = append(out, Finding{
			Analyzer: "prescreen", Kind: KindFlushReorder, Severity: SevWarn,
			File: st.File, Line: st.Line, Func: sh.API, Table: st.Stmt.WriteTable(),
			Detail: fmt.Sprintf("buffered %s of %s is flushed after later session reads; flush order no longer matches modification order", st.Stmt.Kind(), st.Stmt.WriteTable()),
		})
	}
	return out
}

// gapEscalationFindings flags statements whose predicates no index
// covers: the engine falls back to a full-range next-key scan, locking
// far more than the touched rows (lockmodel/infer.go's nil-index case).
func gapEscalationFindings(sh TxnShape, scm *schema.Schema) []Finding {
	var out []Finding
	for _, st := range sh.Stmts {
		if _, ok := insertOf(st.Stmt); ok {
			continue // inserts lock their new row, not a scanned range
		}
		for _, use := range lockmodel.InferPossibleIndexes(st.Stmt, scm) {
			if use.Index != nil {
				continue
			}
			out = append(out, Finding{
				Analyzer: "prescreen", Kind: KindGapEscalation, Severity: SevInfo,
				File: st.File, Line: st.Line, Func: sh.API, Table: use.Table,
				Detail: fmt.Sprintf("no index matches the predicates on %s; the scan next-key-locks the whole range", use.Table),
			})
		}
	}
	return out
}
