package staticlint

import (
	"sort"
	"strings"

	"weseer/internal/schema"
	"weseer/internal/sqlast"
)

// The cross-API lock-order graph: every transaction template casts one
// vote per ordered pair of lock resources it acquires, and the merged
// directed graph is what canonical.go linearizes. Nodes are resources —
// a table, narrowed to a single row when the statement pins the table's
// full primary key to a rigid value — not (resource, mode) pairs:
// acquisition order is a property of the resource, and splitting reads
// from writes would hide exactly the conflicts the paper's f9–f11 fixes
// reorder (a template that reads rows ascending and then write-upgrades
// them descending disagrees with itself only if both acquisitions land
// on the same node pair). An edge u -> v weighted w says "w templates
// acquire (or write-upgrade) u before v".

// OrderNode is one lock-order graph node: a whole table, or a single
// row of it when the statement pins the table's full primary key to a
// rigid value. The row split is what lets same-table acquisition-order
// disagreements — the paper's f9–f11 "sort the rows before locking"
// class — surface as feedback edges instead of collapsing into one
// table node.
type OrderNode struct {
	Table string `json:"table"`
	Row   string `json:"row,omitempty"` // rigid point key, "" = whole table
}

// Key renders the node canonically, e.g. "Product" or "Product[i:3]".
// Node keys are the order the graph and all reports speak in.
func (n OrderNode) Key() string {
	if n.Row != "" {
		return n.Table + "[" + n.Row + "]"
	}
	return n.Table
}

// Vote is one template's support for one edge direction: the API
// (function or trace) and, when known, the source site of the *later*
// acquisition — the statement a reorder fix would move.
type Vote struct {
	API  string `json:"api"`
	File string `json:"file,omitempty"`
	Line int    `json:"line,omitempty"`
}

func voteLess(a, b Vote) bool {
	if a.API != b.API {
		return a.API < b.API
	}
	if a.File != b.File {
		return a.File < b.File
	}
	return a.Line < b.Line
}

// LockOrderGraph is the merged acquisition-order graph over every
// template's lock-order constraints. Node indexes are assigned in
// sorted-key order, so every index-order iteration is deterministic
// regardless of input order or map iteration.
type LockOrderGraph struct {
	nodes     []OrderNode
	idx       map[OrderNode]int
	w         [][]int // w[u][v]: templates acquiring u before v
	votes     map[[2]int][]Vote
	templates int // shapes that contributed at least one node
}

// acquisition is one node's first acquisition within a template.
type acquisition struct {
	node OrderNode
	file string
	line int
}

// acquisitionSeq lists the template's lock-acquisition events in order.
// Statement templates acquire locks in statement order; within one
// statement the write table takes the exclusive lock and every other
// referenced table a shared one. A resource enters the sequence at its
// first acquisition and again when a held shared lock is upgraded to
// exclusive — the upgrade acquires a new (stronger) lock at that point,
// so a template that reads rows ascending and later write-upgrades them
// descending genuinely orders the resources both ways. With a schema,
// statements that rigidly pin a table's full primary key narrow to a
// row-level node, so same-table row-order disagreements stay visible.
func acquisitionSeq(sh TxnShape, scm *schema.Schema) []acquisition {
	const (
		shared    = 1
		exclusive = 2
	)
	held := map[OrderNode]int{}
	var out []acquisition
	for _, st := range sh.Stmts {
		wt := st.Stmt.WriteTable()
		for _, t := range st.Stmt.Tables() {
			n := OrderNode{Table: t}
			if row, ok := rowKeyOf(st, t, scm); ok {
				n.Row = row
			}
			mode := shared
			if t == wt {
				mode = exclusive
			}
			if held[n] >= mode {
				continue
			}
			held[n] = mode
			out = append(out, acquisition{node: n, file: st.File, line: st.Line})
		}
	}
	return out
}

// rowKeyOf returns the rigid point key a statement pins the table's
// primary key to, and false when the accessed row is not statically
// fixed. Aliases are tried in sorted order, so the result never depends
// on map iteration.
func rowKeyOf(sh StmtShape, table string, scm *schema.Schema) (string, bool) {
	if scm == nil {
		return "", false
	}
	t := scm.Table(table)
	if t == nil {
		return "", false
	}
	pk := t.PrimaryIndex()
	if pk == nil || !pk.Unique {
		return "", false
	}
	if _, ok := insertOf(sh.Stmt); ok {
		if k, ok := pointKeyOn(sh, table, pk); ok {
			return strings.TrimSuffix(k, "|"), true
		}
		return "", false
	}
	aliasMap := sqlast.AliasMapOf(sh.Stmt)
	aliases := make([]string, 0, len(aliasMap)+1)
	for a, tab := range aliasMap {
		if tab == table {
			aliases = append(aliases, a)
		}
	}
	sort.Strings(aliases)
	aliases = append(aliases, table)
	for _, a := range aliases {
		if k, ok := pointKeyOn(sh, a, pk); ok {
			return strings.TrimSuffix(k, "|"), true
		}
	}
	return "", false
}

// BuildLockOrderGraph merges every shape's per-template lock-order
// constraints into one directed graph: for each ordered node pair (u
// acquired strictly before v) the template adds one vote to the edge
// u -> v, located at v's acquisition site (the statement a fix would
// hoist). A template votes each ordered pair at most once, but upgrade
// events mean it may vote both directions of the same pair — that
// self-disagreement is the f10/f11 signature, not a bug. scm may be
// nil (no row-level node narrowing).
func BuildLockOrderGraph(shapes []TxnShape, scm *schema.Schema) *LockOrderGraph {
	nodeSet := map[OrderNode]bool{}
	seqs := make([][]acquisition, len(shapes))
	for i, sh := range shapes {
		seqs[i] = acquisitionSeq(sh, scm)
		for _, a := range seqs[i] {
			nodeSet[a.node] = true
		}
	}
	g := &LockOrderGraph{idx: map[OrderNode]int{}, votes: map[[2]int][]Vote{}}
	for n := range nodeSet {
		g.nodes = append(g.nodes, n)
	}
	sort.Slice(g.nodes, func(i, j int) bool { return g.nodes[i].Key() < g.nodes[j].Key() })
	for i, n := range g.nodes {
		g.idx[n] = i
	}
	g.w = make([][]int, len(g.nodes))
	for i := range g.w {
		g.w[i] = make([]int, len(g.nodes))
	}
	for si, seq := range seqs {
		if len(seq) > 0 {
			g.templates++
		}
		voted := map[[2]int]bool{}
		for i := 0; i < len(seq); i++ {
			for j := i + 1; j < len(seq); j++ {
				u, v := g.idx[seq[i].node], g.idx[seq[j].node]
				if u == v || voted[[2]int{u, v}] {
					continue
				}
				voted[[2]int{u, v}] = true
				g.w[u][v]++
				g.votes[[2]int{u, v}] = append(g.votes[[2]int{u, v}], Vote{
					API: shapes[si].API, File: seq[j].file, Line: seq[j].line,
				})
			}
		}
	}
	return g
}

// NodeKeys returns every node key in canonical (sorted) order.
func (g *LockOrderGraph) NodeKeys() []string {
	out := make([]string, len(g.nodes))
	for i, n := range g.nodes {
		out[i] = n.Key()
	}
	return out
}

// EdgeKeys returns every edge as a [from, to] key pair, in canonical
// order.
func (g *LockOrderGraph) EdgeKeys() [][2]string {
	var out [][2]string
	for u := range g.nodes {
		for v := range g.nodes {
			if g.w[u][v] > 0 {
				out = append(out, [2]string{g.nodes[u].Key(), g.nodes[v].Key()})
			}
		}
	}
	return out
}

// Weight returns how many templates acquire from before to (0 when the
// edge is absent or either node unknown).
func (g *LockOrderGraph) Weight(from, to string) int {
	u, okU := g.keyIndex(from)
	v, okV := g.keyIndex(to)
	if !okU || !okV {
		return 0
	}
	return g.w[u][v]
}

func (g *LockOrderGraph) keyIndex(key string) (int, bool) {
	for i, n := range g.nodes {
		if n.Key() == key {
			return i, true
		}
	}
	return 0, false
}

// edgeVotes returns the deduplicated, sorted votes of one edge.
func (g *LockOrderGraph) edgeVotes(u, v int) []Vote {
	raw := g.votes[[2]int{u, v}]
	seen := map[Vote]bool{}
	var out []Vote
	for _, vt := range raw {
		if seen[vt] {
			continue
		}
		seen[vt] = true
		out = append(out, vt)
	}
	sort.Slice(out, func(i, j int) bool { return voteLess(out[i], out[j]) })
	return out
}

// reaches reports whether to is reachable from from along graph edges.
// Callers only ask about distinct nodes (no template acquires a node
// before itself), so the zero-length path never arises.
func (g *LockOrderGraph) reaches(from, to int) bool {
	seen := make([]bool, len(g.nodes))
	stack := []int{from}
	seen[from] = true
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if u == to {
			return true
		}
		for v := range g.nodes {
			if g.w[u][v] > 0 && !seen[v] {
				seen[v] = true
				stack = append(stack, v)
			}
		}
	}
	return false
}
