package staticlint_test

import (
	"os"
	"path/filepath"
	"testing"

	"weseer/internal/apps/broadleaf"
	"weseer/internal/apps/shopizer"
	"weseer/internal/schema"
	"weseer/internal/staticlint"
)

// appShapes extracts the vet transaction shapes of one model app, the
// way `weseer vet -canonical-order` does.
func appShapes(t *testing.T, dir string, scm *schema.Schema) []staticlint.TxnShape {
	t.Helper()
	shapes, err := staticlint.DirShapes(dir, scm)
	if err != nil {
		t.Fatal(err)
	}
	if len(shapes) == 0 {
		t.Fatalf("no transaction shapes under %s", dir)
	}
	return shapes
}

func checkGolden(t *testing.T, golden string, got []byte) {
	t.Helper()
	if *update {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Errorf("output differs from %s (re-run with -update):\ngot:\n%swant:\n%s", golden, got, want)
	}
}

// TestCanonicalOrderGolden locks the exact `weseer vet -canonical-order`
// output — canonical order, ranked suggestions, source sites — on both
// model applications, in both the text and the -json rendering.
//
// Golden delta vs PR 5: DirShapes now resolves callees whole-program,
// so a handler's transaction template includes the statements of its
// non-transaction-opening helpers, located at their real (leaf)
// acquisition sites. Direction votes and reorder suggestions therefore
// cite more sites per API than PR 5's one-level heuristic, while
// workload drivers (Flow/UnitTests) contribute nothing: the handler
// APIs they invoke open their own transactions and are treated as
// boundaries, not inlined.
func TestCanonicalOrderGolden(t *testing.T) {
	for _, tc := range []struct {
		name string
		dir  string
		scm  *schema.Schema
	}{
		{"broadleaf", "../apps/broadleaf", broadleaf.Schema()},
		{"shopizer", "../apps/shopizer", shopizer.Schema()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			shapes := appShapes(t, tc.dir, tc.scm)
			co := staticlint.CanonicalizeShapes(shapes, tc.scm)
			if len(co.Suggestions) == 0 {
				t.Errorf("%s: expected at least one reorder suggestion", tc.name)
			}
			checkGolden(t, filepath.Join("testdata", "golden", "canonical_"+tc.name+".txt"),
				[]byte(co.Render()))

			fs, err := staticlint.Vet(tc.dir, tc.scm)
			if err != nil {
				t.Fatal(err)
			}
			data, err := staticlint.EncodeReport(fs, co)
			if err != nil {
				t.Fatal(err)
			}
			checkGolden(t, filepath.Join("testdata", "golden", "canonical_"+tc.name+".json"), data)

			// The -json envelope must round-trip the canonical order.
			backFs, backCo, err := staticlint.DecodeReport(data)
			if err != nil {
				t.Fatal(err)
			}
			if len(backFs) != len(fs) || backCo == nil || len(backCo.Suggestions) != len(co.Suggestions) {
				t.Fatalf("report round-trip lost data: %d/%d findings, co=%v", len(backFs), len(fs), backCo)
			}
		})
	}
}

// TestVetDeterministic is the nondeterminism regression gate: the whole
// linter output — findings and canonical order, text and JSON — must be
// byte-identical across 20 repeated runs. Any map-ranged emission in
// the analyzers shows up here as a diff. The whole-program path (CHA
// candidate enumeration, SCC fixpoint, summary splicing) is covered by
// the multi-package wholeprog corpus alongside the model apps.
func TestVetDeterministic(t *testing.T) {
	type out struct {
		text string
		data string
	}
	one := func() out {
		var text, data []byte
		for _, tc := range []struct {
			dir string
			scm *schema.Schema
		}{
			{"../apps/broadleaf", broadleaf.Schema()},
			{"../apps/shopizer", shopizer.Schema()},
			{filepath.Join("testdata", "src", "wholeprog"), nil},
		} {
			fs, err := staticlint.Vet(tc.dir, tc.scm)
			if err != nil {
				t.Fatal(err)
			}
			co := staticlint.CanonicalizeShapes(appShapes(t, tc.dir, tc.scm), tc.scm)
			text = append(text, render(fs)...)
			text = append(text, co.Render()...)
			enc, err := staticlint.EncodeReport(fs, co)
			if err != nil {
				t.Fatal(err)
			}
			data = append(data, enc...)
		}
		return out{string(text), string(data)}
	}
	first := one()
	for run := 1; run < 20; run++ {
		if got := one(); got != first {
			t.Fatalf("run %d produced different output than run 0", run)
		}
	}
}
