package workload_test

import (
	"testing"
	"time"

	"weseer/internal/appgen"
	"weseer/internal/apps/broadleaf"
	"weseer/internal/apps/shopizer"
	"weseer/internal/minidb"
	"weseer/internal/workload"
)

func dbConfig() minidb.Config {
	return minidb.Config{
		StatementDelay:  100 * time.Microsecond,
		LockWaitTimeout: 100 * time.Millisecond,
	}
}

func runBroadleaf(t *testing.T, fixes broadleaf.Fixes, clients int) workload.Result {
	t.Helper()
	app := broadleaf.New(fixes, dbConfig())
	return workload.Run(workload.Config{
		Clients:  clients,
		Duration: 400 * time.Millisecond,
		Seed:     7,
	}, app.DB, app.Flow())
}

func runShopizer(t *testing.T, fixes shopizer.Fixes, clients int) workload.Result {
	t.Helper()
	app := shopizer.New(fixes, dbConfig())
	return workload.Run(workload.Config{
		Clients:  clients,
		Duration: 400 * time.Millisecond,
		Seed:     7,
	}, app.DB, app.Flow())
}

// TestFig10Shape checks the headline Broadleaf result: with all fixes
// enabled the application sustains far higher throughput than with the
// deadlocks left to the database's detect-and-recover handling, and the
// abort rate drops to (near) zero — the paper's 904 → 0 aborts/s.
func TestFig10Shape(t *testing.T) {
	enabled := runBroadleaf(t, broadleaf.AllFixes(), 64)
	disabled := runBroadleaf(t, broadleaf.Fixes{}, 64)
	t.Logf("enable all: %.0f API/s, %d deadlocks; disable all: %.0f API/s, %d deadlocks",
		enabled.Throughput, enabled.Deadlocks, disabled.Throughput, disabled.Deadlocks)
	if enabled.Throughput < 4*disabled.Throughput {
		t.Errorf("fixes should win by a wide margin: %.0f vs %.0f API/s",
			enabled.Throughput, disabled.Throughput)
	}
	if disabled.Deadlocks < 50 {
		t.Errorf("unfixed app deadlocked only %d times", disabled.Deadlocks)
	}
	if enabled.Deadlocks > disabled.Deadlocks/20 {
		t.Errorf("fixed app still deadlocks heavily: %d vs %d", enabled.Deadlocks, disabled.Deadlocks)
	}
}

// TestFig11Shape checks the Shopizer result at high concurrency.
func TestFig11Shape(t *testing.T) {
	enabled := runShopizer(t, shopizer.AllFixes(), 64)
	disabled := runShopizer(t, shopizer.Fixes{}, 64)
	t.Logf("enable all: %.0f API/s, %d deadlocks; disable all: %.0f API/s, %d deadlocks",
		enabled.Throughput, enabled.Deadlocks, disabled.Throughput, disabled.Deadlocks)
	if enabled.Throughput < disabled.Throughput {
		t.Errorf("fixes should win at 64 clients: %.0f vs %.0f API/s",
			enabled.Throughput, disabled.Throughput)
	}
	if enabled.Deadlocks > 5 {
		t.Errorf("fixed app deadlocked %d times", enabled.Deadlocks)
	}
	if disabled.Deadlocks < 50 {
		t.Errorf("unfixed app deadlocked only %d times", disabled.Deadlocks)
	}
}

// TestDisableF2Hurts reproduces the paper's observation that f2 (the cart
// UPSERT) is Broadleaf's most valuable fix at high concurrency.
func TestDisableF2Hurts(t *testing.T) {
	all := runBroadleaf(t, broadleaf.AllFixes(), 64)
	noF2 := runBroadleaf(t, broadleaf.AllFixes().Disable("f2"), 64)
	t.Logf("all: %.0f API/s; disable f2: %.0f API/s (%d deadlocks)",
		all.Throughput, noF2.Throughput, noF2.Deadlocks)
	if noF2.Deadlocks == 0 {
		t.Error("disabling f2 should reintroduce cart-lock deadlocks")
	}
	if noF2.Throughput >= all.Throughput {
		t.Errorf("disabling f2 should cost throughput: %.0f vs %.0f", noF2.Throughput, all.Throughput)
	}
}

// TestRetryBackoffCountsCalls sanity-checks the harness accounting.
func TestRetryBackoffCountsCalls(t *testing.T) {
	app := broadleaf.New(broadleaf.AllFixes(), minidb.Config{})
	res := workload.Run(workload.Config{
		Clients:      2,
		Duration:     150 * time.Millisecond,
		RetryBackoff: time.Millisecond,
		Seed:         1,
	}, app.DB, app.Flow())
	if res.APICalls == 0 {
		t.Error("no API calls recorded")
	}
	if res.Throughput <= 0 {
		t.Error("throughput not computed")
	}
	if res.Clients != 2 {
		t.Errorf("clients = %d", res.Clients)
	}
}

// TestRetriesCountedUnderContention drives a contended unfixed app and
// checks the retry-burn accounting the fixgain experiment reports: a
// deadlock-victim or timed-out call re-attempted under RetryBackoff
// must be counted in Retries, and fixing the planted classes must
// reduce that burn.
func TestRetriesCountedUnderContention(t *testing.T) {
	spec := "13,templates=3,modules=1,tables=2,rows=4,classes=f2:1+f10:1"
	run := func(fixed ...string) workload.Result {
		app, err := appgen.FromSpec(spec, dbConfig(), appgen.WithFixedClasses(fixed...))
		if err != nil {
			t.Fatal(err)
		}
		return workload.Run(workload.Config{
			Clients:      8,
			Duration:     400 * time.Millisecond,
			RetryBackoff: time.Millisecond,
			Seed:         42,
		}, app.DB(), app.Flow())
	}
	unfixed := run()
	fixed := run("f2", "f10")
	t.Logf("unfixed: %d calls, %d retries, %d deadlocks; fixed: %d calls, %d retries, %d deadlocks",
		unfixed.APICalls, unfixed.Retries, unfixed.Deadlocks,
		fixed.APICalls, fixed.Retries, fixed.Deadlocks)
	if unfixed.Deadlocks == 0 {
		t.Error("unfixed corpus never deadlocked — no contention to measure")
	}
	if unfixed.Retries == 0 {
		t.Error("deadlock victims were not counted as retries")
	}
	if fixed.Retries >= unfixed.Retries && unfixed.Retries > 0 {
		t.Errorf("fixing the planted classes should cut retry burn: %d -> %d",
			unfixed.Retries, fixed.Retries)
	}
}
