// Package workload is the performance-evaluation harness behind Figs. 10
// and 11: N concurrent clients each simulate one customer flow —
// sequentially issuing the Table I API calls against the application —
// while the harness measures successful API throughput and the database's
// deadlock-abort rate. Deadlock victims retry, so deadlock storms burn
// client time exactly as aborted transactions burn CPU in the paper's
// testbed.
package workload

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"weseer/internal/concolic"
	"weseer/internal/minidb"
)

// Step is one API call in a client's flow. It returns the API name (for
// accounting) and the call's outcome.
type Step func(e *concolic.Engine) (string, error)

// Flow produces a client's infinite call sequence: each invocation
// returns the next step. Implementations are per-client stateful.
type Flow func(clientID int64, rng *rand.Rand) func() Step

// Config parameterizes one run.
type Config struct {
	Clients  int
	Duration time.Duration
	// MaxRetries bounds how often a failing step is retried before the
	// client gives up and moves on (deadlock victims retry).
	MaxRetries int
	// RetryBackoff is slept before each retry, modeling client-side
	// backoff after an aborted request.
	RetryBackoff time.Duration
	Seed         int64
}

// Result reports one run's outcome.
type Result struct {
	Clients    int
	Duration   time.Duration
	APICalls   int64   // successful API calls
	Failures   int64   // calls that kept failing after retries
	Retries    int64   // retry attempts burned on failing steps
	Throughput float64 // successful API calls per second
	Deadlocks  int64   // deadlock victims (database aborts)
	AbortsPS   float64 // transaction aborts per second
	LockWaits  int64
}

// Run drives the flow with cfg.Clients concurrent clients for
// cfg.Duration and returns aggregate metrics.
func Run(cfg Config, db *minidb.DB, flow Flow) Result {
	if cfg.MaxRetries == 0 {
		cfg.MaxRetries = 50
	}
	before := db.StatsSnapshot()
	var calls, failures, retries atomic.Int64
	deadline := time.Now().Add(cfg.Duration)

	var wg sync.WaitGroup
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func(id int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + id))
			next := flow(id, rng)
			e := concolic.New(concolic.ModeOff)
			for time.Now().Before(deadline) {
				step := next()
				ok := false
				for attempt := 0; attempt <= cfg.MaxRetries; attempt++ {
					if attempt > 0 {
						retries.Add(1)
					}
					if _, err := step(e); err == nil {
						ok = true
						break
					}
					if !time.Now().Before(deadline) {
						break
					}
					if cfg.RetryBackoff > 0 {
						time.Sleep(cfg.RetryBackoff)
					}
				}
				if ok {
					calls.Add(1)
				} else {
					failures.Add(1)
				}
			}
		}(int64(c + 1))
	}
	wg.Wait()

	after := db.StatsSnapshot()
	res := Result{
		Clients:   cfg.Clients,
		Duration:  cfg.Duration,
		APICalls:  calls.Load(),
		Failures:  failures.Load(),
		Retries:   retries.Load(),
		Deadlocks: after.Deadlocks - before.Deadlocks,
		LockWaits: after.LockWaits - before.LockWaits,
	}
	secs := cfg.Duration.Seconds()
	if secs > 0 {
		res.Throughput = float64(res.APICalls) / secs
		res.AbortsPS = float64(after.Aborts-before.Aborts) / secs
	}
	return res
}
