package orm

import (
	"fmt"
	"strings"

	"weseer/internal/concolic"
	"weseer/internal/sqlast"
	"weseer/internal/trace"
)

// Session is the persistence context: one unit of work with a first-level
// read cache and a write-behind queue. Sessions outlive individual
// transactions — the paper's Fig. 1 reads Order o from a cache populated
// before the transaction began — and are not safe for concurrent use.
type Session struct {
	m    *Mapping
	conn *concolic.Conn

	// cache maps table → (pk → *Entity). It is a SymMap so cache probes
	// generate the Alg. 1 existence path conditions.
	cache map[string]*concolic.SymMap

	// Write-behind state: pending INSERTs (Persist/Merge), dirty managed
	// entities in first-modification order, and pending DELETEs.
	pendingNew []*Entity
	dirtyOrder []*Entity
	pendingDel []*Entity
}

// NewSession opens a persistence context over a connection.
func NewSession(m *Mapping, conn *concolic.Conn) *Session {
	return &Session{m: m, conn: conn, cache: map[string]*concolic.SymMap{}}
}

// Conn exposes the underlying driver connection.
func (s *Session) Conn() *concolic.Conn { return s.conn }

// Mapping returns the session's ORM metadata.
func (s *Session) Mapping() *Mapping { return s.m }

func (s *Session) engine() *concolic.Engine { return s.conn.Engine() }

func (s *Session) tableCache(table string) *concolic.SymMap {
	c := s.cache[table]
	if c == nil {
		pk := s.m.pkColumn(table)
		c = s.engine().NewSymMap("cache."+table, pk.Type.Sort())
		s.cache[table] = c
	}
	return c
}

// Begin starts a database transaction.
func (s *Session) Begin() error { return s.conn.Begin() }

// Commit flushes the write-behind queue and commits. On any error the
// transaction is rolled back.
func (s *Session) Commit() error {
	if err := s.Flush(); err != nil {
		s.conn.Rollback()
		return err
	}
	return s.conn.Commit()
}

// Rollback aborts the transaction and clears pending writes.
func (s *Session) Rollback() error {
	s.pendingNew = nil
	s.dirtyOrder = nil
	s.pendingDel = nil
	return s.conn.Rollback()
}

// Transactional runs fn inside a transaction, mirroring the
// @Transactional annotation: commit on success (flushing buffered
// writes), roll back on error. Database errors surfacing as FlushError
// panics (Hibernate's unchecked exceptions) are converted to errors.
func (s *Session) Transactional(fn func() error) error {
	if err := s.Begin(); err != nil {
		return err
	}
	if err := Guard(fn); err != nil {
		s.Rollback()
		return err
	}
	return s.Commit()
}

// Guard runs fn, converting FlushError panics (the ORM's analog of
// Hibernate's unchecked persistence exceptions) into returned errors.
func Guard(fn func() error) (err error) {
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		if fe, ok := r.(*FlushError); ok {
			err = fe
			return
		}
		panic(r)
	}()
	return fn()
}

// ---------------------------------------------------------------------------
// Reads

// Find returns the entity with the given primary key, consulting the read
// cache first: a cache hit sends no SQL (Sec. II-B), a miss issues an
// eager point SELECT. It returns nil when the row does not exist.
func (s *Session) Find(table string, id concolic.Value) *Entity {
	cache := s.tableCache(table)
	if v, ok := cache.Get(id); ok {
		return v.(*Entity)
	}
	t := s.m.scm.Table(table)
	pk := t.PrimaryIndex().Columns[0]
	sql := fmt.Sprintf("SELECT * FROM %s t WHERE t.%s = ?", table, pk)
	rows, err := s.conn.Exec(sql, []concolic.Value{id}, concolic.Here(2))
	if err != nil {
		panic(&FlushError{Err: err})
	}
	if rows.Empty() {
		return nil
	}
	en := s.hydrateAlias(table, "t", rows, 0)
	return en
}

// Query runs an eager SELECT and hydrates every referenced alias's rows
// into the read cache; it returns the entities of the given target alias
// in row order (duplicates collapse to the cached entity).
func (s *Session) Query(sql string, params []concolic.Value, target string) []*Entity {
	return s.query(sql, params, target, concolic.Here(2))
}

func (s *Session) query(sql string, params []concolic.Value, target string, trigger trace.CodeLoc) []*Entity {
	st, err := sqlast.Parse(sql)
	if err != nil {
		panic(fmt.Sprintf("orm: %v", err))
	}
	sel, ok := st.(*sqlast.Select)
	if !ok {
		panic("orm: Query requires a SELECT")
	}
	aliasMap := sel.AliasMap()
	if _, ok := aliasMap[target]; !ok {
		panic(fmt.Sprintf("orm: target alias %q not in %q", target, sql))
	}
	rows, err := s.conn.Exec(sql, params, trigger)
	if err != nil {
		panic(&FlushError{Err: err})
	}
	var out []*Entity
	seen := map[*Entity]bool{}
	for ri := 0; ri < rows.Len(); ri++ {
		for alias, table := range aliasMap {
			en := s.hydrateAlias(table, alias, rows, ri)
			if alias == target && en != nil && !seen[en] {
				seen[en] = true
				out = append(out, en)
			}
		}
	}
	return out
}

// hydrateAlias loads one alias's columns of one result row into an
// entity, reusing the cached instance when present (the read cache wins
// over fresh database state, as Hibernate's first-level cache does).
func (s *Session) hydrateAlias(table, alias string, rows *concolic.Rows, ri int) *Entity {
	t := s.m.scm.Table(table)
	pkCol := t.PrimaryIndex().Columns[0]
	id := rows.Get(ri, alias+"."+pkCol)
	if id.Null {
		return nil // outer-ish join miss
	}
	cache := s.tableCache(table)
	if v, ok := cache.Get(id); ok {
		return v.(*Entity)
	}
	en := &Entity{Table: table, fields: map[string]concolic.Value{}, state: stateManaged}
	for _, c := range t.Columns {
		en.fields[c.Name] = rows.Get(ri, alias+"."+c.Name)
	}
	cache.Put(id, en)
	return en
}

// Lazy returns a lazily-loaded collection handle. No SQL is sent until
// Items is first called — the deferral that makes statement order differ
// from program order.
func (s *Session) Lazy(owner *Entity, collection string) *LazyList {
	return &LazyList{s: s, owner: owner, spec: s.m.collection(owner.Table, collection)}
}

// LazyList is a lazily-loaded to-many association.
type LazyList struct {
	s      *Session
	owner  *Entity
	spec   *Collection
	loaded bool
	items  []*Entity
}

// Items loads the collection on first use (recording the access site as
// the SELECT's trigger code, per Sec. VI's lazy-read rule) and returns
// the member entities.
func (ll *LazyList) Items() []*Entity {
	if !ll.loaded {
		params := make([]concolic.Value, len(ll.spec.OwnerParams))
		for i, col := range ll.spec.OwnerParams {
			params[i] = ll.owner.Get(col)
		}
		ll.items = ll.s.query(ll.spec.SQL, params, ll.spec.Target, concolic.Here(2))
		ll.loaded = true
	}
	return ll.items
}

// Loaded reports whether the collection has been fetched.
func (ll *LazyList) Loaded() bool { return ll.loaded }

// ---------------------------------------------------------------------------
// Writes

// NewEntity creates a transient entity with every column NULL.
func (s *Session) NewEntity(table string) *Entity {
	t := s.m.scm.Table(table)
	if t == nil {
		panic("orm: unknown table " + table)
	}
	en := &Entity{Table: table, fields: map[string]concolic.Value{}, state: stateNew}
	for _, c := range t.Columns {
		en.fields[c.Name] = concolic.NullValue(c.Type.Sort())
	}
	return en
}

// Set assigns a column value. On a managed entity this is an implicit
// lazy write: the UPDATE is buffered and this call site becomes its
// trigger code.
func (s *Session) Set(en *Entity, col string, v concolic.Value) {
	if s.m.scm.Table(en.Table).Column(col) == nil {
		panic(fmt.Sprintf("orm: unknown column %s.%s", en.Table, col))
	}
	en.fields[col] = v
	if en.state != stateManaged {
		return
	}
	if en.dirty == nil {
		en.dirty = map[string]bool{}
		s.dirtyOrder = append(s.dirtyOrder, en)
	}
	en.dirty[col] = true
	en.modLoc = concolic.Here(2)
}

// Persist schedules a transient entity for INSERT at the next flush.
// Unlike Merge it issues no SELECT — the fix (f1) for deadlock d1.
func (s *Session) Persist(en *Entity) {
	if en.state != stateNew {
		panic("orm: Persist of a managed entity")
	}
	en.persistLoc = concolic.Here(2)
	s.pendingNew = append(s.pendingNew, en)
	pk := s.m.scm.Table(en.Table).PrimaryIndex().Columns[0]
	s.tableCache(en.Table).Put(en.Get(pk), en)
}

// Merge is Hibernate's merge: it issues an eager SELECT for the entity's
// key and then schedules an INSERT (row absent) or buffered UPDATE (row
// present). The SELECT's range lock on an absent key followed by the
// INSERT is the paper's deadlock d1.
func (s *Session) Merge(en *Entity) *Entity {
	t := s.m.scm.Table(en.Table)
	pkCol := t.PrimaryIndex().Columns[0]
	id := en.Get(pkCol)
	sql := fmt.Sprintf("SELECT * FROM %s t WHERE t.%s = ?", en.Table, pkCol)
	rows, err := s.conn.Exec(sql, []concolic.Value{id}, concolic.Here(2))
	if err != nil {
		panic(&FlushError{Err: err})
	}
	if rows.Empty() {
		en.persistLoc = concolic.Here(2)
		en.state = stateNew
		s.pendingNew = append(s.pendingNew, en)
		s.tableCache(en.Table).Put(id, en)
		return en
	}
	// Row exists: copy the detached state onto the managed instance.
	managed := s.hydrateAlias(en.Table, "t", rows, 0)
	for col, v := range en.fields {
		if col == pkCol {
			continue
		}
		s.Set(managed, col, v)
	}
	return managed
}

// Remove schedules a managed entity for DELETE at flush.
func (s *Session) Remove(en *Entity) {
	en.state = stateRemoved
	en.persistLoc = concolic.Here(2)
	s.pendingDel = append(s.pendingDel, en)
	pk := s.m.scm.Table(en.Table).PrimaryIndex().Columns[0]
	s.tableCache(en.Table).Remove(en.Get(pk))
}

// FlushError wraps a database error surfaced through the ORM. The
// application layer treats it like Hibernate's runtime exceptions.
type FlushError struct{ Err error }

func (e *FlushError) Error() string { return "orm: " + e.Err.Error() }
func (e *FlushError) Unwrap() error { return e.Err }

// Flush drains the write-behind cache: buffered INSERTs first, then
// UPDATEs in first-modification order, then DELETEs — the reordering
// relative to program order that hides deadlocks d5/d6 (and that fix f4
// exploits by flushing early).
func (s *Session) Flush() error {
	for _, en := range s.pendingNew {
		if err := s.flushInsert(en); err != nil {
			return err
		}
		en.state = stateManaged
	}
	s.pendingNew = nil
	for _, en := range s.dirtyOrder {
		if err := s.flushUpdate(en); err != nil {
			return err
		}
		en.dirty = nil
	}
	s.dirtyOrder = nil
	for _, en := range s.pendingDel {
		if err := s.flushDelete(en); err != nil {
			return err
		}
	}
	s.pendingDel = nil
	return nil
}

func (s *Session) flushInsert(en *Entity) error {
	t := s.m.scm.Table(en.Table)
	var cols []string
	var params []concolic.Value
	for _, c := range t.Columns {
		v := en.fields[c.Name]
		if v.Null {
			continue
		}
		cols = append(cols, c.Name)
		params = append(params, v)
	}
	marks := strings.TrimSuffix(strings.Repeat("?, ", len(cols)), ", ")
	sql := fmt.Sprintf("INSERT INTO %s (%s) VALUES (%s)", en.Table, strings.Join(cols, ", "), marks)
	_, err := s.conn.Exec(sql, params, en.persistLoc)
	return err
}

func (s *Session) flushUpdate(en *Entity) error {
	t := s.m.scm.Table(en.Table)
	pkCol := t.PrimaryIndex().Columns[0]
	var sets []string
	var params []concolic.Value
	for _, c := range t.Columns {
		if !en.dirty[c.Name] {
			continue
		}
		sets = append(sets, c.Name+" = ?")
		params = append(params, en.fields[c.Name])
	}
	if len(sets) == 0 {
		return nil
	}
	params = append(params, en.fields[pkCol])
	sql := fmt.Sprintf("UPDATE %s SET %s WHERE %s = ?", en.Table, strings.Join(sets, ", "), pkCol)
	_, err := s.conn.Exec(sql, params, en.modLoc)
	return err
}

func (s *Session) flushDelete(en *Entity) error {
	t := s.m.scm.Table(en.Table)
	pkCol := t.PrimaryIndex().Columns[0]
	sql := fmt.Sprintf("DELETE FROM %s WHERE %s = ?", en.Table, pkCol)
	_, err := s.conn.Exec(sql, []concolic.Value{en.fields[pkCol]}, en.persistLoc)
	return err
}

// Exec sends an ad-hoc statement through the session's connection —
// applications use it for hand-written SQL such as fix f2's UPSERT.
func (s *Session) Exec(sql string, params []concolic.Value) (*concolic.Rows, error) {
	return s.conn.Exec(sql, params, concolic.Here(2))
}
