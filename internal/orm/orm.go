// Package orm is a miniature object-relational mapper with the Hibernate
// behaviors the paper identifies as obscuring transaction logic (Sec.
// II-B): a first-level read cache that satisfies repeated reads without
// SQL, a write-behind cache that buffers modifications and flushes them
// at commit (reordering statements relative to program order), lazy
// collection loading that defers SELECTs until first access, and the
// merge-vs-persist distinction behind deadlock d1. It runs over the
// concolic driver connection, so the trace collector observes exactly the
// statements a real ORM would send.
package orm

import (
	"fmt"
	"strings"

	"weseer/internal/concolic"
	"weseer/internal/schema"
	"weseer/internal/smt"
	"weseer/internal/sqlast"
	"weseer/internal/trace"
)

// Collection declares a lazily-loaded relation: the join SELECT issued on
// first access and how its result hydrates entities. This mirrors
// Hibernate association mappings compiled to fetch queries like the
// paper's Q4.
type Collection struct {
	// Name identifies the collection on the owning entity.
	Name string
	// SQL is the fetch template; every referenced alias's entities are
	// hydrated into the session read cache.
	SQL string
	// OwnerParams are the owning entity's columns bound to the template's
	// '?' parameters, in order.
	OwnerParams []string
	// Target is the alias whose entities form the collection result.
	Target string
}

// Mapping holds per-table ORM metadata.
type Mapping struct {
	scm         *schema.Schema
	collections map[string]map[string]*Collection
}

// NewMapping creates a mapping over a schema.
func NewMapping(scm *schema.Schema) *Mapping {
	return &Mapping{scm: scm, collections: map[string]map[string]*Collection{}}
}

// Schema returns the mapped schema.
func (m *Mapping) Schema() *schema.Schema { return m.scm }

// AddCollection registers a lazy collection on a table.
func (m *Mapping) AddCollection(table string, c Collection) {
	t := m.scm.Table(table)
	if t == nil {
		panic("orm: unknown table " + table)
	}
	if _, err := sqlast.Parse(c.SQL); err != nil {
		panic(fmt.Sprintf("orm: collection %s.%s SQL: %v", table, c.Name, err))
	}
	for _, col := range c.OwnerParams {
		if t.Column(col) == nil {
			panic(fmt.Sprintf("orm: collection %s.%s param column %s missing", table, c.Name, col))
		}
	}
	byName := m.collections[table]
	if byName == nil {
		byName = map[string]*Collection{}
		m.collections[table] = byName
	}
	byName[c.Name] = &c
}

func (m *Mapping) collection(table, name string) *Collection {
	c := m.collections[table][name]
	if c == nil {
		panic(fmt.Sprintf("orm: no collection %s on %s", name, table))
	}
	return c
}

// pkColumn returns the single primary-key column of a table. Composite
// keys are outside the supported subset (neither evaluated application
// uses them on entity tables).
func (m *Mapping) pkColumn(table string) schema.Column {
	t := m.scm.Table(table)
	pi := t.PrimaryIndex()
	if len(pi.Columns) != 1 {
		panic("orm: composite primary keys unsupported for entities: " + table)
	}
	return *t.Column(pi.Columns[0])
}

// entityState tracks an entity's persistence life cycle.
type entityState uint8

const (
	stateManaged entityState = iota // loaded from the database
	stateNew                        // scheduled for INSERT at flush
	stateRemoved                    // scheduled for DELETE at flush
)

// Entity is a persistent object: a dynamic record of column values. Field
// values are concolic, so data flow from SELECT results through object
// state into later statement parameters is tracked symbolically.
type Entity struct {
	Table string

	fields map[string]concolic.Value
	state  entityState
	dirty  map[string]bool
	// modLoc is the last modification site: the trigger code of the
	// implicit lazy write this entity's eventual UPDATE corresponds to
	// (Sec. VI).
	modLoc trace.CodeLoc
	// persistLoc is the Persist/Merge call site for pending INSERTs.
	persistLoc trace.CodeLoc
}

// Get returns the value of a column.
func (en *Entity) Get(col string) concolic.Value {
	v, ok := en.fields[col]
	if !ok {
		panic(fmt.Sprintf("orm: entity %s has no field %s", en.Table, col))
	}
	return v
}

// Fields returns the column names with assigned values, sorted.
func (en *Entity) Fields() []string {
	out := make([]string, 0, len(en.fields))
	for c := range en.fields {
		out = append(out, c)
	}
	sortStrings(out)
	return out
}

func sortStrings(xs []string) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

func (en *Entity) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s{", en.Table)
	for i, c := range en.Fields() {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s=%s", c, en.fields[c])
	}
	b.WriteString("}")
	return b.String()
}

// sortOf maps a column to its smt sort.
func sortOf(t *schema.Table, col string) smt.Sort {
	c := t.Column(col)
	if c == nil {
		panic(fmt.Sprintf("orm: unknown column %s.%s", t.Name, col))
	}
	return c.Type.Sort()
}
