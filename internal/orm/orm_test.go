package orm

import (
	"errors"
	"strings"
	"testing"
	"time"

	"weseer/internal/concolic"
	"weseer/internal/minidb"
	"weseer/internal/schema"
	"weseer/internal/sqlast"
	"weseer/internal/trace"
)

// fig1Schema is the paper's Fig. 1 schema.
func fig1Schema() *schema.Schema {
	s := schema.New()
	s.AddTable("Orders").
		Col("ID", schema.Int).
		PrimaryKey("ID")
	s.AddTable("Product").
		Col("ID", schema.Int).
		Col("QTY", schema.Int).
		PrimaryKey("ID")
	s.AddTable("OrderItem").
		Col("ID", schema.Int).
		Col("O_ID", schema.Int).
		Col("P_ID", schema.Int).
		Col("QTY", schema.Int).
		PrimaryKey("ID").
		Index("idx_oi_o", "O_ID").
		ForeignKey([]string{"O_ID"}, "Orders", []string{"ID"}).
		ForeignKey([]string{"P_ID"}, "Product", []string{"ID"})
	return s
}

func fig1Mapping() *Mapping {
	m := NewMapping(fig1Schema())
	// The paper's Q4: lazy order-items collection fetching three tables.
	m.AddCollection("Orders", Collection{
		Name:        "OrdItems",
		SQL:         `SELECT * FROM OrderItem oi JOIN Orders o ON o.ID = oi.O_ID JOIN Product p ON p.ID = oi.P_ID WHERE oi.O_ID = ?`,
		OwnerParams: []string{"ID"},
		Target:      "oi",
	})
	return m
}

func setup(t *testing.T, mode concolic.Mode) (*Session, *concolic.Engine, *minidb.DB) {
	t.Helper()
	m := fig1Mapping()
	db := minidb.Open(m.Schema(), minidb.Config{LockWaitTimeout: time.Second})
	seed := db.Begin()
	mustExec := func(sql string, ps ...minidb.Datum) {
		t.Helper()
		if _, err := seed.Exec(sqlast.MustParse(sql), ps); err != nil {
			t.Fatal(err)
		}
	}
	mustExec(`INSERT INTO Orders (ID) VALUES (?)`, minidb.I64(1))
	mustExec(`INSERT INTO Product (ID, QTY) VALUES (?, ?)`, minidb.I64(1), minidb.I64(100))
	mustExec(`INSERT INTO OrderItem (ID, O_ID, P_ID, QTY) VALUES (?, ?, ?, ?)`,
		minidb.I64(1), minidb.I64(1), minidb.I64(1), minidb.I64(5))
	seed.Commit()

	e := concolic.New(mode)
	e.StartConcolic("test")
	return NewSession(m, concolic.NewConn(e, db)), e, db
}

func TestFindCachesAndSkipsSQL(t *testing.T) {
	s, e, _ := setup(t, concolic.ModeConcolic)
	id := e.MakeSymbolic("pid", concolic.Int(1))
	err := s.Transactional(func() error {
		p1 := s.Find("Product", id)
		if p1 == nil {
			return errors.New("product missing")
		}
		p2 := s.Find("Product", id)
		if p1 != p2 {
			t.Error("read cache returned a different instance")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	tr := e.EndConcolic()
	// Exactly one SELECT despite two Finds: the second hit the cache.
	if n := len(tr.AllStmts()); n != 1 {
		t.Fatalf("statements = %d, want 1", n)
	}
}

func TestFindMissing(t *testing.T) {
	s, e, _ := setup(t, concolic.ModeConcolic)
	_ = e
	err := s.Transactional(func() error {
		if got := s.Find("Product", concolic.Int(42)); got != nil {
			t.Errorf("Find(42) = %v", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWriteBehindDefersUpdate(t *testing.T) {
	s, e, db := setup(t, concolic.ModeConcolic)
	err := s.Transactional(func() error {
		p := s.Find("Product", concolic.Int(1))
		qty := p.Get("QTY")
		s.Set(p, "QTY", e.Sub(qty, concolic.Int(5)))
		// The UPDATE is buffered: nothing written yet.
		rows := db.TableRows("Product")
		if rows[0][1].I != 100 {
			t.Errorf("update not deferred: qty = %v", rows[0][1])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if rows := db.TableRows("Product"); rows[0][1].I != 95 {
		t.Errorf("after commit qty = %v", rows[0][1])
	}
	tr := e.EndConcolic()
	stmts := tr.AllStmts()
	if len(stmts) != 2 {
		t.Fatalf("stmts = %d", len(stmts))
	}
	upd := stmts[1]
	if upd.Parsed.Kind() != sqlast.KindUpdate {
		t.Fatalf("second stmt = %s", upd.SQL)
	}
	// The UPDATE's parameter flows from the SELECT's symbolic result.
	if !strings.Contains(upd.Params[0].Sym.String(), "res0.row0") {
		t.Errorf("update param = %v", upd.Params[0].Sym)
	}
	// Trigger code (Set call site, in this test file) differs from the
	// send site (the flush inside Commit).
	if !strings.Contains(upd.Trigger.Top().File, "orm_test.go") {
		t.Errorf("trigger = %v", upd.Trigger)
	}
}

func TestLazyCollectionQ4(t *testing.T) {
	s, e, _ := setup(t, concolic.ModeConcolic)
	err := s.Transactional(func() error {
		o := s.Find("Orders", concolic.Int(1))
		items := s.Lazy(o, "OrdItems")
		if items.Loaded() {
			t.Error("collection loaded before access")
		}
		if tr := e.Trace(); len(tr.AllStmts()) != 1 {
			t.Errorf("lazy collection sent SQL early: %d stmts", len(tr.AllStmts()))
		}
		got := items.Items()
		if len(got) != 1 || got[0].Get("QTY").C.I != 5 {
			t.Fatalf("items = %v", got)
		}
		// Q4 hydrates Product p into the cache: a later Find sends no SQL.
		before := len(e.Trace().AllStmts())
		p := s.Find("Product", got[0].Get("P_ID"))
		if p == nil {
			t.Fatal("product not hydrated")
		}
		if after := len(e.Trace().AllStmts()); after != before {
			t.Errorf("cached Find sent SQL (%d -> %d)", before, after)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPersistNoSelect(t *testing.T) {
	s, e, db := setup(t, concolic.ModeConcolic)
	err := s.Transactional(func() error {
		u := s.NewEntity("Product")
		s.Set(u, "ID", concolic.Int(77))
		s.Set(u, "QTY", concolic.Int(1))
		s.Persist(u)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	tr := e.EndConcolic()
	stmts := tr.AllStmts()
	if len(stmts) != 1 || stmts[0].Parsed.Kind() != sqlast.KindInsert {
		t.Fatalf("persist statements: %v", stmtSQLs(stmts))
	}
	if rows := db.TableRows("Product"); len(rows) != 2 {
		t.Errorf("rows = %d", len(rows))
	}
}

func TestMergeIssuesSelectThenInsert(t *testing.T) {
	// Merge on an absent key = SELECT + INSERT: the d1 pattern.
	s, e, _ := setup(t, concolic.ModeConcolic)
	err := s.Transactional(func() error {
		u := s.NewEntity("Product")
		s.Set(u, "ID", concolic.Int(88))
		s.Set(u, "QTY", concolic.Int(2))
		s.Merge(u)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	stmts := e.EndConcolic().AllStmts()
	if len(stmts) != 2 ||
		stmts[0].Parsed.Kind() != sqlast.KindSelect ||
		stmts[1].Parsed.Kind() != sqlast.KindInsert {
		t.Fatalf("merge statements: %v", stmtSQLs(stmts))
	}
	if !stmts[0].Res.Empty {
		t.Error("merge SELECT should be empty")
	}
}

func TestMergeOnExistingUpdates(t *testing.T) {
	s, e, db := setup(t, concolic.ModeConcolic)
	err := s.Transactional(func() error {
		u := s.NewEntity("Product")
		s.Set(u, "ID", concolic.Int(1))
		s.Set(u, "QTY", concolic.Int(55))
		s.Merge(u)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	stmts := e.EndConcolic().AllStmts()
	if len(stmts) != 2 || stmts[1].Parsed.Kind() != sqlast.KindUpdate {
		t.Fatalf("merge-existing statements: %v", stmtSQLs(stmts))
	}
	if rows := db.TableRows("Product"); rows[0][1].I != 55 {
		t.Errorf("qty = %v", rows[0][1])
	}
}

func TestRemove(t *testing.T) {
	s, e, db := setup(t, concolic.ModeConcolic)
	err := s.Transactional(func() error {
		oi := s.Find("OrderItem", concolic.Int(1))
		s.Remove(oi)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if rows := db.TableRows("OrderItem"); len(rows) != 0 {
		t.Errorf("rows = %d", len(rows))
	}
	stmts := e.EndConcolic().AllStmts()
	last := stmts[len(stmts)-1]
	if last.Parsed.Kind() != sqlast.KindDelete {
		t.Errorf("last stmt = %s", last.SQL)
	}
}

func TestEarlyFlushReordersStatements(t *testing.T) {
	// Fix f4 moves the ORM flush earlier; the buffered UPDATE must be
	// sent at the Flush call, before a later SELECT.
	s, e, _ := setup(t, concolic.ModeConcolic)
	err := s.Transactional(func() error {
		p := s.Find("Product", concolic.Int(1))
		s.Set(p, "QTY", concolic.Int(7))
		if err := s.Flush(); err != nil {
			return err
		}
		s.Find("Orders", concolic.Int(1))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	stmts := e.EndConcolic().AllStmts()
	kinds := make([]sqlast.StmtKind, len(stmts))
	for i, st := range stmts {
		kinds[i] = st.Parsed.Kind()
	}
	want := []sqlast.StmtKind{sqlast.KindSelect, sqlast.KindUpdate, sqlast.KindSelect}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("kinds = %v, want %v", kinds, want)
		}
	}
}

func TestFlushOrderInsertsBeforeUpdates(t *testing.T) {
	s, e, _ := setup(t, concolic.ModeConcolic)
	err := s.Transactional(func() error {
		p := s.Find("Product", concolic.Int(1))
		s.Set(p, "QTY", concolic.Int(9)) // modified first...
		n := s.NewEntity("Product")
		s.Set(n, "ID", concolic.Int(60))
		s.Set(n, "QTY", concolic.Int(1))
		s.Persist(n) // ...but the INSERT flushes first
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	stmts := e.EndConcolic().AllStmts()
	if stmts[1].Parsed.Kind() != sqlast.KindInsert || stmts[2].Parsed.Kind() != sqlast.KindUpdate {
		t.Fatalf("flush order: %v", stmtSQLs(stmts))
	}
}

func TestTransactionalRollbackOnError(t *testing.T) {
	s, _, db := setup(t, concolic.ModeConcolic)
	boom := errors.New("boom")
	err := s.Transactional(func() error {
		p := s.Find("Product", concolic.Int(1))
		s.Set(p, "QTY", concolic.Int(0))
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if rows := db.TableRows("Product"); rows[0][1].I != 100 {
		t.Errorf("rollback failed: qty = %v", rows[0][1])
	}
}

func TestGuardConvertsFlushError(t *testing.T) {
	inner := errors.New("db down")
	err := Guard(func() error {
		panic(&FlushError{Err: inner})
	})
	if !errors.Is(err, inner) {
		t.Fatalf("err = %v", err)
	}
	// Non-FlushError panics propagate.
	defer func() {
		if recover() == nil {
			t.Fatal("foreign panic swallowed")
		}
	}()
	Guard(func() error { panic("other") })
}

func TestDuplicateKeySurfacesAsError(t *testing.T) {
	s, _, _ := setup(t, concolic.ModeConcolic)
	err := s.Transactional(func() error {
		u := s.NewEntity("Product")
		s.Set(u, "ID", concolic.Int(1)) // exists
		s.Set(u, "QTY", concolic.Int(3))
		s.Persist(u)
		return nil
	})
	if !errors.Is(err, minidb.ErrDuplicateKey) {
		t.Fatalf("err = %v", err)
	}
}

func TestUpsertThroughExec(t *testing.T) {
	// Fix f2 replaces check-then-insert with a single UPSERT statement.
	s, e, db := setup(t, concolic.ModeConcolic)
	err := s.Transactional(func() error {
		_, err := s.Exec(
			`INSERT INTO Product (ID, QTY) VALUES (?, ?) ON DUPLICATE KEY UPDATE QTY = ?`,
			[]concolic.Value{concolic.Int(1), concolic.Int(5), concolic.Int(5)})
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if rows := db.TableRows("Product"); rows[0][1].I != 5 {
		t.Errorf("qty = %v", rows[0][1])
	}
	stmts := e.EndConcolic().AllStmts()
	if len(stmts) != 1 || stmts[0].Parsed.Kind() != sqlast.KindUpsert {
		t.Fatalf("stmts = %v", stmtSQLs(stmts))
	}
}

func TestSessionSpansTransactions(t *testing.T) {
	// Fig. 1: the order is fetched (and cached) before the transaction;
	// inside the transaction the cached read sends no SQL.
	s, e, _ := setup(t, concolic.ModeConcolic)
	var warm *Entity
	// Outside any transaction: auto-commit SELECT.
	warm = s.Find("Orders", concolic.Int(1))
	if warm == nil {
		t.Fatal("warmup find failed")
	}
	err := s.Transactional(func() error {
		o := s.Find("Orders", concolic.Int(1))
		if o != warm {
			t.Error("cache did not span transactions")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	tr := e.EndConcolic()
	if n := len(tr.AllStmts()); n != 1 {
		t.Errorf("statements = %d, want 1 (warmup only)", n)
	}
	if len(tr.Txns) != 2 {
		t.Errorf("txns = %d (auto-commit + explicit)", len(tr.Txns))
	}
}

func TestModeOffRuns(t *testing.T) {
	// The same application code must run at full speed with tracking off
	// (the workload-generator path for Figs. 10/11).
	s, e, db := setup(t, concolic.ModeOff)
	err := s.Transactional(func() error {
		p := s.Find("Product", concolic.Int(1))
		s.Set(p, "QTY", e.Sub(p.Get("QTY"), concolic.Int(1)))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if rows := db.TableRows("Product"); rows[0][1].I != 99 {
		t.Errorf("qty = %v", rows[0][1])
	}
	if e.EndConcolic() != nil {
		t.Error("ModeOff produced a trace")
	}
}

func stmtSQLs(stmts []*trace.Stmt) []string {
	out := make([]string, len(stmts))
	for i, s := range stmts {
		out[i] = s.SQL
	}
	return out
}
